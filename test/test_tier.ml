(* Tests for the tiered-memory layer: per-tier frame-conservation audits,
   Mgr_tiered's hot/cold migration, the compressed-store round trip, and
   the zero-delta rule for single-tier machines. *)

module Phys = Hw_phys_mem
module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags
module T = Mgr_tiered
module Engine = Sim_engine
module Data = Hw_page_data

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let page_size = 4096

let tiered_kernel ~fast ~slow =
  let machine =
    Hw_machine.create ~page_size
      ~tiers:
        [
          Phys.dram_tier ~bytes:(fast * page_size);
          Phys.slow_dram_tier ~bytes:(slow * page_size);
        ]
      ()
  in
  (machine, K.create machine)

(* Both conservation audits — flat and per-tier — against their
   O(segments × pages) scan references. *)
let audits_agree kernel =
  K.frame_owner_audit kernel = K.frame_owner_audit_scan kernel
  && K.frame_owner_audit_tiered kernel = K.frame_owner_audit_tiered_scan kernel

(* Summing tier column [k] of the per-tier audit over all segments must
   give tier [k]'s frame count. *)
let tier_columns_conserved kernel machine =
  let mem = machine.Hw_machine.mem in
  let totals = Array.make (Phys.n_tiers mem) 0 in
  List.iter
    (fun (_, by_tier) ->
      Array.iteri (fun k n -> totals.(k) <- totals.(k) + n) by_tier)
    (K.frame_owner_audit_tiered kernel);
  Array.for_all Fun.id
    (Array.init (Phys.n_tiers mem) (fun k ->
         let _, count = Phys.tier_bounds mem k in
         totals.(k) = count))

(* ------------------------------------------------------------------ *)
(* Per-tier audit vs the scan reference                               *)
(* ------------------------------------------------------------------ *)

(* Churn a segment bigger than the fast tier through Mgr_tiered so pages
   demote and promote across tiers, checking the incremental per-tier
   audit against the scan (and the column sums) mid-storm and after. *)
let test_tiered_audit_matches_scan () =
  (* Slow tier big enough to hold the overflow: demoted pages wait there
     and their next touch is a promotion, so churn crosses the tier
     boundary in both directions. *)
  let machine, kernel = tiered_kernel ~fast:12 ~slow:48 in
  let mgr =
    T.create kernel ~fast_pool_capacity:4 ~slow_pool_capacity:4 ~refill_batch:4 ~reclaim_batch:2
      ()
  in
  let seg = T.create_segment mgr ~name:"churn" ~pages:40 () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for round = 0 to 3 do
        for i = 0 to 39 do
          let page = (i + (round * 7)) mod 40 in
          let access = if i mod 3 = 0 then Mgr.Write else Mgr.Read in
          K.touch kernel ~space:seg ~page ~access
        done;
        check_bool
          (Printf.sprintf "audit = scan after round %d" round)
          true (audits_agree kernel)
      done);
  Engine.run machine.Hw_machine.engine;
  check_bool "audit = scan after churn" true (audits_agree kernel);
  check_bool "tier columns sum to tier sizes" true (tier_columns_conserved kernel machine);
  check_int "no frame lost" (Hw_machine.n_frames machine) (K.frame_owner_total kernel);
  let stats = T.stats mgr in
  check_bool "churn demoted pages" true (stats.T.demotions_slow > 0);
  check_bool "churn promoted pages" true (stats.T.promotions > 0);
  (* The segment's own per-tier counters agree with their scan too. *)
  let s = K.segment kernel seg in
  check_bool "segment per-tier counters = scan" true
    (Seg.resident_pages_by_tier s = Seg.resident_pages_by_tier_scan s)

(* Destroying a tiered segment returns every frame — in both tiers — to
   the initial segment, visible through the per-tier audit. *)
let test_tiered_audit_after_destroy () =
  let machine, kernel = tiered_kernel ~fast:8 ~slow:8 in
  let mgr = T.create kernel ~fast_pool_capacity:2 ~slow_pool_capacity:2 () in
  let seg = T.create_segment mgr ~name:"doomed" ~pages:12 () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for p = 0 to 11 do
        K.touch kernel ~space:seg ~page:p ~access:Mgr.Write
      done;
      K.destroy_segment kernel seg);
  Engine.run machine.Hw_machine.engine;
  check_bool "audit = scan after destroy" true (audits_agree kernel);
  check_bool "tier columns sum to tier sizes" true (tier_columns_conserved kernel machine);
  check_int "no frame lost" (Hw_machine.n_frames machine) (K.frame_owner_total kernel)

(* ------------------------------------------------------------------ *)
(* Compressed-store round trip                                        *)
(* ------------------------------------------------------------------ *)

(* A working set larger than fast + slow - pool holdings forces the full
   cascade: fast -> slow -> compressed store -> refetch. Every page must
   come back with the contents it was written with. *)
let test_compressed_round_trip () =
  let pages = 30 in
  let machine, kernel = tiered_kernel ~fast:8 ~slow:9 in
  let mgr =
    T.create kernel ~fast_pool_capacity:2 ~slow_pool_capacity:2 ~refill_batch:4 ~reclaim_batch:2
      ()
  in
  let seg = T.create_segment mgr ~name:"cascade" ~pages () in
  let payload p = Data.of_string (Printf.sprintf "tier-page-%d" p) in
  let intact = ref true in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for p = 0 to pages - 1 do
        K.uio_write kernel ~seg ~page:p (payload p)
      done;
      for p = 0 to pages - 1 do
        if not (Data.equal (K.uio_read kernel ~seg ~page:p) (payload p)) then intact := false
      done);
  Engine.run machine.Hw_machine.engine;
  check_bool "contents intact across the cascade" true !intact;
  let stats = T.stats mgr in
  check_bool "pages reached the compressed store" true (stats.T.demotions_compressed > 0);
  check_bool "pages were refetched from it" true (stats.T.refetches > 0);
  check_bool "audit = scan after cascade" true (audits_agree kernel);
  check_int "no frame lost" (Hw_machine.n_frames machine) (K.frame_owner_total kernel)

(* ------------------------------------------------------------------ *)
(* Zero-delta: a single-DRAM-tier machine is the flat machine          *)
(* ------------------------------------------------------------------ *)

(* The naive demand pager from Exp_tier, in miniature: one initial-segment
   frame per missing fault, monotone address order. *)
let naive_pager kernel =
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let on_fault (fault : Mgr.fault) =
    match fault.Mgr.f_kind with
    | Mgr.Missing | Mgr.Cow_write ->
        let init_seg = K.segment kernel init in
        while (Seg.page init_seg !next).Seg.frame = None do
          incr next
        done;
        K.migrate_pages kernel ~src:init ~dst:fault.Mgr.f_seg ~src_page:!next
          ~dst_page:fault.Mgr.f_page ~count:1
          ~clear_flags:(Flags.of_list [ Flags.dirty; Flags.no_access; Flags.read_only ])
          ();
        incr next
    | Mgr.Protection ->
        K.modify_page_flags kernel ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
          ~clear_flags:(Flags.of_list [ Flags.no_access; Flags.read_only ])
          ()
  in
  K.register_manager kernel ~name:"naive" ~mode:`In_process ~on_fault ()

(* Run a deterministic fault + warm-scan trace and return every counter
   that could betray a tier-induced difference. *)
let trace_counts machine =
  let kernel = K.create machine in
  let mid = naive_pager kernel in
  let seg = K.create_segment kernel ~name:"heap" ~pages:24 () in
  K.set_segment_manager kernel seg mid;
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for p = 0 to 23 do
        K.touch kernel ~space:seg ~page:p ~access:Mgr.Write
      done;
      for _ = 1 to 5 do
        for p = 0 to 23 do
          K.touch kernel ~space:seg ~page:p ~access:Mgr.Read
        done
      done);
  Engine.run machine.Hw_machine.engine;
  let s = K.stats kernel in
  ( s.K.touches,
    s.K.faults_missing + s.K.faults_protection + s.K.faults_cow,
    s.K.migrate_calls,
    s.K.migrated_pages,
    Engine.events_executed machine.Hw_machine.engine,
    Hw_machine.now machine )

(* An explicit one-dram-tier machine must be indistinguishable — same
   counts, same events, same simulated time to the last bit — from the
   flat [create] machine (which is itself now a one-tier machine). *)
let test_single_tier_zero_delta () =
  let flat = Hw_machine.create ~page_size ~memory_bytes:(32 * page_size) () in
  let one_tier =
    Hw_machine.create ~page_size ~tiers:[ Phys.dram_tier ~bytes:(32 * page_size) ] ()
  in
  let t1, f1, mc1, mp1, e1, us1 = trace_counts flat in
  let t2, f2, mc2, mp2, e2, us2 = trace_counts one_tier in
  check_int "touches" t1 t2;
  check_int "faults" f1 f2;
  check_int "migrate calls" mc1 mc2;
  check_int "migrated pages" mp1 mp2;
  check_int "events" e1 e2;
  Alcotest.(check (float 0.0)) "simulated time (exact)" us1 us2

(* The single-tier config reproduces today's pinned 8 MB perf counts
   (the same goldens test_workloads pins; re-asserted here because the
   tier redesign is exactly what could shift them). *)
let test_single_tier_golden_8mb () =
  let r = Wl_scale.run Wl_scale.size_8mb in
  check_int "frames" 2048 r.Wl_scale.r_frames;
  check_int "touches" 3584 r.Wl_scale.r_touches;
  check_int "faults" 1344 r.Wl_scale.r_faults;
  check_int "migrate calls" 2696 r.Wl_scale.r_migrate_calls;
  check_int "migrated pages" 3200 r.Wl_scale.r_migrated_pages;
  check_bool "conserved" true r.Wl_scale.r_conserved

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Random churn through the tiered manager never corrupts a page or
   loses a frame: whatever was written last is what reads back, no
   matter how many times the page moved between tiers or through the
   compressed store in between. *)
let prop_churn_preserves_contents_and_ownership =
  QCheck.Test.make
    ~name:"tiered manager: churn preserves page contents and frame ownership" ~count:25
    QCheck.(pair small_nat (int_range 16 40))
    (fun (seed, pages) ->
      let machine, kernel = tiered_kernel ~fast:8 ~slow:8 in
      let mgr =
        T.create kernel ~fast_pool_capacity:3 ~slow_pool_capacity:3 ~refill_batch:3
          ~reclaim_batch:2 ()
      in
      let seg = T.create_segment mgr ~name:"prop" ~pages () in
      let rng = Sim_rng.create (Int64.of_int (seed + 1)) in
      let payload p step = Data.of_string (Printf.sprintf "p%d-s%d" p step) in
      let written = Array.init pages (fun p -> payload p (-1)) in
      let ok = ref true in
      Engine.spawn machine.Hw_machine.engine (fun () ->
          (* Seed every page with a known payload (V++ does not zero on
             allocation, so an unwritten page has no defined contents). *)
          for p = 0 to pages - 1 do
            K.uio_write kernel ~seg ~page:p written.(p)
          done;
          for step = 0 to 199 do
            let p = Sim_rng.int rng pages in
            if Sim_rng.bool rng then begin
              written.(p) <- payload p step;
              K.uio_write kernel ~seg ~page:p written.(p)
            end
            else if not (Data.equal (K.uio_read kernel ~seg ~page:p) written.(p)) then
              ok := false
          done;
          for p = 0 to pages - 1 do
            if not (Data.equal (K.uio_read kernel ~seg ~page:p) written.(p)) then ok := false
          done);
      Engine.run machine.Hw_machine.engine;
      !ok && audits_agree kernel
      && tier_columns_conserved kernel machine
      && K.frame_owner_total kernel = Hw_machine.n_frames machine)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_churn_preserves_contents_and_ownership ]

let () =
  Alcotest.run "tier"
    [
      ( "conservation",
        [
          Alcotest.test_case "per-tier audit matches scan under churn" `Quick
            test_tiered_audit_matches_scan;
          Alcotest.test_case "per-tier audit after segment destroy" `Quick
            test_tiered_audit_after_destroy;
        ] );
      ( "cascade",
        [ Alcotest.test_case "compressed-store round trip" `Quick test_compressed_round_trip ] );
      ( "zero-delta",
        [
          Alcotest.test_case "one dram tier = flat machine" `Quick test_single_tier_zero_delta;
          Alcotest.test_case "8 MB perf goldens hold" `Quick test_single_tier_golden_8mb;
        ] );
      ("properties", qcheck_cases);
    ]
