test/test_ultrix.mli:
