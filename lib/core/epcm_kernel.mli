(** The V++ kernel virtual-memory system with external page-cache
    management (paper §2.1).

    The kernel provides segments, bound regions and page-frame migration —
    and {e nothing else}: no page reclamation, no writeback, no replacement
    policy. Those live in process-level managers. The kernel's only jobs
    are to maintain hardware translations, to forward fault events to the
    manager designated for each segment, and to move page frames between
    segments on request.

    Timing: operations charge the machine's {!Hw_cost} table step by step
    when called from inside a simulation process. Called outside a process
    (plain unit tests), they perform the same state transitions with no
    time passing. *)

type error =
  | No_such_segment of int
  | Dead_segment of int
  | Page_out_of_range of { seg : int; page : int; length : int }
  | Frame_present of { seg : int; page : int }
  | No_frame of { seg : int; page : int }
  | No_manager of int  (** Segment has no manager to deliver a fault to. *)
  | No_such_manager of int
  | Binding_overlap of { seg : int; at : int; len : int }
  | Binding_out_of_range of { seg : int; at : int; len : int }
  | Page_size_mismatch of { src : int; dst : int }
  | Fault_recursion of { manager : int; depth : int }
  | Unresolved_fault of { seg : int; page : int }
      (** A manager's fault handler returned without mapping a frame. *)
  | Initial_segment_operation
  | Tier_mismatch of { seg : int; page : int; frame : int; want : int; got : int }
      (** [MigratePages ~tier] found a source frame outside the requested
          memory tier. *)

exception Error of error

val error_to_string : error -> string

type page_attributes = {
  pa_flags : Epcm_flags.t;
  pa_frame : int option;
  pa_phys_addr : int option;  (** Physical address — the paper exports this
                                  for coloring / placement control. *)
}

type stats = {
  mutable faults_missing : int;
  mutable faults_protection : int;
  mutable faults_cow : int;
  mutable manager_calls : int;
  mutable migrate_calls : int;
  mutable migrated_pages : int;
  mutable modify_flag_calls : int;
  mutable get_attribute_calls : int;
  mutable uio_reads : int;
  mutable uio_writes : int;
  mutable page_copies : int;
  mutable page_zeros : int;
  mutable touches : int;
  mutable sp_promotions : int;
      (** Aligned 4 KB runs folded into one 2 MB superpage mapping. *)
  mutable sp_demotions : int;
      (** Superpage regions split back to 4 KB granularity. *)
}

type t

val create : Hw_machine.t -> t
val machine : t -> Hw_machine.t
val stats : t -> stats
val manager_calls_of : t -> Epcm_manager.id -> int

(** {2 Boot-time state} *)

val initial_segment : t -> Epcm_segment.id
(** The well-known segment created at initialisation holding every page
    frame in physical-address order (paper §2.1). The system page cache
    manager allocates from it with [MigratePages]. It cannot be destroyed,
    bound, or given away. *)

(** {2 Managers} *)

val register_manager :
  t ->
  name:string ->
  mode:Epcm_manager.mode ->
  on_fault:(Epcm_manager.fault -> unit) ->
  ?on_close:(Epcm_segment.id -> unit) ->
  ?on_pressure:(pages:int -> int) ->
  unit ->
  Epcm_manager.id

val manager : t -> Epcm_manager.id -> Epcm_manager.t

val set_segment_manager : t -> Epcm_segment.id -> Epcm_manager.id -> unit
(** The [SetSegmentManager] kernel operation. *)

(** {2 Segments} *)

val create_segment :
  t ->
  ?page_size:int ->
  ?manager:Epcm_manager.id ->
  name:string ->
  pages:int ->
  unit ->
  Epcm_segment.id
(** [page_size] defaults to the machine page size; other values model
    multiple-page-size hardware (Alpha). *)

val destroy_segment : t -> Epcm_segment.id -> unit
(** Notifies the manager ([on_close]) first; any frames still resident
    afterwards are returned to the initial segment. *)

val grow_segment : t -> Epcm_segment.id -> pages:int -> unit
val segment : t -> Epcm_segment.id -> Epcm_segment.t
val segment_exists : t -> Epcm_segment.id -> bool

val bind_region :
  t ->
  space:Epcm_segment.id ->
  at:int ->
  len:int ->
  target:Epcm_segment.id ->
  target_page:int ->
  cow:bool ->
  unit
(** Bind [len] pages of [target] starting at [target_page] into [space] at
    [at]. Regions bound into one segment must not overlap. A reference to a
    covered page forwards to the target unless the space has since gained a
    private page there (which is how completed copy-on-write looks). *)

(** {2 The page-cache management operations} *)

val migrate_pages :
  t ->
  src:Epcm_segment.id ->
  dst:Epcm_segment.id ->
  src_page:int ->
  dst_page:int ->
  count:int ->
  ?tier:int ->
  ?set_flags:Epcm_flags.t ->
  ?clear_flags:Epcm_flags.t ->
  unit ->
  unit
(** [MigratePages]: move page frames (and their contents and flags) from
    [src] to [dst], applying the set/clear masks. Destination slots must be
    empty; source slots must be resident. All translations for both slots
    are invalidated.

    [tier], when given, asserts every moved frame belongs to that memory
    tier (placement control: a manager demanding fast-DRAM frames);
    otherwise the call fails with {!error.Tier_mismatch} before any page
    moves. On multi-tier machines each moved page also charges its tier's
    [tier_migrate_us] surcharge (label ["kernel/tier_migrate"]); on a
    single-tier machine the pass is skipped entirely, so flat machines are
    byte-identical to the pre-tier kernel. *)

val modify_page_flags :
  t ->
  seg:Epcm_segment.id ->
  page:int ->
  count:int ->
  ?set_flags:Epcm_flags.t ->
  ?clear_flags:Epcm_flags.t ->
  unit ->
  unit
(** [ModifyPageFlags] — unlike Unix [mprotect], this can also set and clear
    [dirty] and [referenced]. Changing protection flags flushes affected
    translations. *)

val get_page_attributes :
  t -> seg:Epcm_segment.id -> page:int -> count:int -> page_attributes array
(** [GetPageAttributes]: flags plus physical frame address per page. *)

val release_frames : t -> seg:Epcm_segment.id -> page:int -> count:int -> unit
(** Return resident frames in the range to the initial segment (frame [f]
    goes to the first free initial slot at or cyclically after index [f]).
    Non-resident pages in the range are skipped. *)

val zero_pages : t -> seg:Epcm_segment.id -> page:int -> count:int -> unit
(** Explicit zero-fill (charged per page). V++ does not zero on allocation
    — the paper credits this for most of its fault-time win — so zeroing
    is a separate operation a manager uses only when handing frames across
    protection domains. *)

(** {2 Superpages (2 MB mappings)}

    A segment manager can opt a segment into superpage-backed translation.
    Once opted in, any region of [super_pages] (machine default 512)
    consecutive, region-aligned pages that is fully resident on an equally
    aligned physical frame run — typically installed by one batched
    {!migrate_pages} — is {e promoted}: one 2 MB entry covers the run in
    the mapping hash and TLB, so warm references and refills touch one
    entry instead of 512. Any translation change inside a promoted region
    (protection change, partial eviction, partial migrate, teardown)
    {e demotes} it back to 4 KB first. Residency bookkeeping never leaves
    4 KB granularity: the per-segment resident counters and the frame
    conservation audits are exact throughout. Machines with no opted-in
    segment skip every superpage pass on a single integer compare (the
    [n_tiers > 1] discipline), keeping all 4 KB paths byte-identical. *)

val set_superpages : t -> seg:Epcm_segment.id -> enabled:bool -> unit
(** Opt a segment in or out of superpage mappings. Opting out demotes all
    its promoted regions. Not permitted on the initial segment. *)

val super_pages : t -> int
(** Base pages per superpage, from the machine ({!Hw_machine.super_pages}). *)

val find_superpage_run : ?tier:int -> t -> start:int -> int option
(** First frame of an aligned free run suitable to back one superpage: all
    [super_pages t] frames sit in the initial segment {e in their boot
    slots} (slot i holds frame i), at or after [start], optionally within
    one memory tier. A manager advancing [start] monotonically scans each
    frame at most once per streaming pass. *)

val grant_superpage_run :
  ?tier:int -> t -> dst:Epcm_segment.id -> dst_page:int -> start:int -> int option
(** Find such a run and move it into [dst] at superpage-aligned
    [dst_page] with one contiguous {!migrate_pages}; when [dst] is opted
    in, the region promotes as part of the migrate. Returns the base
    frame granted (the caller's next [start] cursor), or [None] when no
    aligned run is available — the caller falls back to 4 KB grants. *)

(** {2 Memory references and file access} *)

val touch : t -> space:Epcm_segment.id -> page:int -> access:Epcm_manager.access -> unit
(** One memory reference: TLB, then mapping hash, then segment walk, then —
    if the page is missing or protected — the full fault protocol of
    Figure 2 against the responsible manager. Returns when the reference
    has been satisfied. *)

val uio_read : t -> seg:Epcm_segment.id -> page:int -> Hw_page_data.t
(** Block read from a cached file segment via the UIO interface: faults the
    page in through the manager if needed, then copies out one block
    (= one page). *)

val uio_write : t -> seg:Epcm_segment.id -> page:int -> Hw_page_data.t -> unit
(** Block write: faults/allocates the page via the manager if needed, then
    copies the data in and marks the page dirty. *)

(** {2 Introspection for tests and the Figure 1/2 reproduction} *)

val resolve_slot : t -> space:Epcm_segment.id -> page:int -> (Epcm_segment.id * int) option
(** Follow bindings from ([space], [page]) to the slot that holds (or would
    hold) the frame, without faulting or charging time. [None] if the page
    is unmapped and unbound. *)

val frame_owner_audit : t -> (int * int) list
(** For the conservation invariant: (segment id, resident frames) for all
    live segments. The sum over all segments always equals the number of
    physical frames. Uses the per-segment incremental resident counters:
    O(live segments), not O(segments × pages). *)

val frame_owner_audit_scan : t -> (int * int) list
(** The same audit computed by scanning every segment's page array — the
    O(segments × pages) reference that the equivalence tests pin
    {!frame_owner_audit} against after every chaos storm. *)

val frame_owner_total : t -> int
(** The sum of {!frame_owner_audit}: total frames owned by live segments.
    Chaos scenarios assert it equals the machine's frame count after every
    fault storm — injected failures must never leak a frame. *)

val frame_owner_audit_tiered : t -> (int * int array) list
(** Per-tier conservation: (segment id, resident frames per memory tier)
    for all live segments, from the incremental per-tier counters. Summing
    tier column [k] over all segments always equals tier [k]'s frame
    count. *)

val frame_owner_audit_tiered_scan : t -> (int * int array) list
(** The per-tier audit computed by scanning every page array — the
    O(segments × pages) reference {!frame_owner_audit_tiered} is pinned
    against. *)

val initial_slots : ?tier:int -> t -> limit:int -> int list
(** Free-frame selection: up to [limit] initial-segment slots currently
    holding frames, ascending — restricted to one memory tier when [tier]
    is given. This is how tier-aware managers refill per-tier pools. *)

val free_frames_in_tier : t -> tier:int -> int
(** Frames of a tier currently in the initial segment — O(tiers), from the
    initial segment's per-tier resident counters. *)

val render_address_space : t -> Epcm_segment.id -> string
(** Figure 1-style dump of a composed address space. *)
