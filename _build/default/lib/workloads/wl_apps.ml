(* Trace definitions for the three measured applications.

   The file sizes are the paper's. The heap sizes are chosen so the V++
   manager activity reproduces Table 3 exactly:

     manager calls = MigratePages calls + forwarded open/close/admin
     MigratePages  = heap first-touches + ceil(append pages / 4)

     diff:       heap 357 + append 240KB (60 pages -> 15 batches) = 372
                 + 1 output open + 3 closes + 3 admin            = 379
     uncompress: heap  67 + append 2MB (512 pages -> 128 batches) = 195
                 + 1 output open + 1 close                        = 197
     latex:      heap 230 + dvi 92KB (23p -> 6) + aux 8KB (2p -> 1)
                 + log 12KB (3p -> 1)                             = 238
                 + 3 output opens + 9 closes                      = 250

   Base compute times are calibrated so the Ultrix elapsed times land on
   Table 2 (4.05 / 6.01 / 13.65 s); [vpp_library_delta_us] carries the
   paper's residual attribution to run-time library differences (§3.2). *)

open Wl_trace

let seconds s = Compute (s *. 1_000_000.0)

let diff =
  {
    name = "diff";
    heap_pages = 360;
    vpp_library_delta_us = -143_000.0;
    ops =
      [
        Admin { requests = 3 };
        Open_input { file = 1; kb = 200 };
        Open_input { file = 2; kb = 200 };
        Open_output { file = 3 };
        (* Read both files, building line tables in the heap. *)
        Read_seq { file = 1; kb = 200 };
        Touch_heap { pages = 150 };
        seconds 1.2;
        Read_seq { file = 2; kb = 200 };
        Touch_heap { pages = 150 };
        seconds 1.2;
        (* The LCS computation and its workspace. *)
        Touch_heap { pages = 57 };
        Rescan_heap { passes = 3 };
        seconds 1.2;
        (* Emit the 240KB differences file. *)
        Append { file = 3; kb = 240 };
        seconds 0.3556;
        Close { file = 1 };
        Close { file = 2 };
        Close { file = 3 };
      ];
  }

let uncompress =
  {
    name = "uncompress";
    heap_pages = 70;
    vpp_library_delta_us = 323_000.0;
    ops =
      [
        Open_input { file = 1; kb = 800 };
        Open_output { file = 2 };
        (* The code table. *)
        Touch_heap { pages = 67 };
        seconds 0.5;
        (* Streamed decompression: read 800KB, write 2MB. *)
        Read_seq { file = 1; kb = 800 };
        Rescan_heap { passes = 2 };
        seconds 2.672;
        Append { file = 2; kb = 2048 };
        seconds 2.672;
        Close { file = 2 };
      ];
  }

let latex =
  {
    name = "latex";
    heap_pages = 235;
    vpp_library_delta_us = 1_004_000.0;
    ops =
      [
        Open_input { file = 1; kb = 100 };
        (* Style, format and font metric files. *)
        Open_input { file = 2; kb = 120 };
        Open_input { file = 3; kb = 60 };
        Open_input { file = 4; kb = 40 };
        Open_input { file = 5; kb = 40 };
        Open_input { file = 6; kb = 40 };
        Open_output { file = 7 };
        (* .dvi *)
        Open_output { file = 8 };
        (* .aux *)
        Open_output { file = 9 };
        (* .log *)
        Read_seq { file = 2; kb = 120 };
        Read_seq { file = 3; kb = 60 };
        Read_seq { file = 4; kb = 40 };
        Read_seq { file = 5; kb = 40 };
        Read_seq { file = 6; kb = 40 };
        Touch_heap { pages = 120 };
        seconds 4.0;
        Read_seq { file = 1; kb = 100 };
        Touch_heap { pages = 110 };
        Rescan_heap { passes = 4 };
        seconds 5.0;
        (* 23 formatted pages of .dvi plus aux and log output. *)
        Append { file = 7; kb = 92 };
        Append { file = 8; kb = 8 };
        Append { file = 9; kb = 12 };
        seconds 4.585;
        Close { file = 1 };
        Close { file = 2 };
        Close { file = 3 };
        Close { file = 4 };
        Close { file = 5 };
        Close { file = 6 };
        Close { file = 7 };
        Close { file = 8 };
        Close { file = 9 };
      ];
  }

let all = [ diff; uncompress; latex ]

let pages_of_kb kb = (kb + 3) / 4
let append_batches kb = (pages_of_kb kb + 3) / 4

let expected_migrate_calls t =
  let appends =
    List.fold_left
      (fun acc op -> match op with Append { kb; _ } -> acc + append_batches kb | _ -> acc)
      0 t.ops
  in
  total_heap_touches t + appends

let expected_manager_calls t =
  let forwarded =
    List.fold_left
      (fun acc op ->
        match op with
        | Open_output _ | Close _ -> acc + 1
        | Admin { requests } -> acc + requests
        | Compute _ | Open_input _ | Read_seq _ | Append _ | Touch_heap _ | Rescan_heap _ ->
            acc)
      0 t.ops
  in
  expected_migrate_calls t + forwarded
