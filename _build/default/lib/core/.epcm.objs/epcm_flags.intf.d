lib/core/epcm_flags.mli: Format
