lib/dbms/db_locks.mli: Format
