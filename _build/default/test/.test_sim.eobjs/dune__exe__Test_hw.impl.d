test/test_hw.ml: Alcotest Hw_cache Hw_disk Hw_page_data Hw_page_table Hw_phys_mem Hw_tlb List QCheck QCheck_alcotest Sim_engine
