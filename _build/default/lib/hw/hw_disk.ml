module Engine = Sim_engine
module Resource = Sim_sync.Resource

type params = {
  seek_us : float;
  half_rotation_us : float;
  us_per_kb : float;
}

let default_params = { seek_us = 12_000.0; half_rotation_us = 4_150.0; us_per_kb = 666.0 }

type t = {
  params : params;
  arm : Resource.t;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create engine ?(params = default_params) () =
  {
    params;
    arm = Resource.create engine ~capacity:1;
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
  }

let access_time_us t ~bytes =
  t.params.seek_us +. t.params.half_rotation_us
  +. (float_of_int bytes /. 1024.0 *. t.params.us_per_kb)

let transfer t ~bytes = Resource.use t.arm (fun () -> Engine.delay (access_time_us t ~bytes))

let read t ~bytes =
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + bytes;
  transfer t ~bytes

let write t ~bytes =
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + bytes;
  transfer t ~bytes

let reads t = t.reads
let writes t = t.writes
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let busy_fraction t = Resource.utilisation t.arm
