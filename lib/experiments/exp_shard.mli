(** Sharded-DBMS throughput record (`vpp_repro shard`,
    [BENCH_shard.json], schema [vpp-shard/1]).

    Runs the same total transaction count through {!Db_shard} at
    increasing shard counts — 1 and 4 in quick mode, 1/4/8 in full —
    fanning the shards of each leg over OCaml 5 domains with
    {!Exp_par.map} (each shard is a self-contained deterministic
    machine, so the joined record is byte-identical to a sequential
    run), then re-runs the 4-shard leg and pins the replay identical.

    Embedded checks gate the exit status of `vpp_repro shard` and the
    [@shard-smoke] CI alias: aggregate TPS strictly increasing with
    shard count (the 4-shard leg must beat the single shard on the same
    total work), bounded abort rate, per-shard frame conservation,
    exact commit/abort accounting, the single-shard zero-delta (no 2PC
    messages, no DSM transfers), and seed-replay identity.

    Deterministic fields reproduce exactly across hosts; only the
    [wall_s] fields vary. *)

val schema_version : string
(** ["vpp-shard/1"]. Bump when the record layout changes. *)

type leg = {
  g_shards : int;
  g_txns : int;  (** Transactions executed (= commits + aborts). *)
  g_commits : int;
  g_aborts : int;
  g_abort_rate : float;
  g_local : int;
  g_cross : int;  (** Two-shard transactions run through 2PC. *)
  g_msgs : int;  (** 2PC protocol messages, summed over shards. *)
  g_prepares : int;
  g_transfers : int;  (** DSM page copies shipped. *)
  g_timeouts : int;  (** Lock waits that expired into abort votes. *)
  g_tps : float;
      (** Aggregate: total transactions over the {e slowest} shard's
          simulated seconds. *)
  g_p50_ms : float;  (** Worst shard's median latency. *)
  g_p99_ms : float;  (** Worst shard's p99 latency. *)
  g_sim_s : float;  (** Slowest shard's simulated seconds. *)
  g_conserved : bool;  (** Frame audit held on every shard machine. *)
  g_wall_s : float;
  g_detail : Db_shard.result list;  (** Per-shard rows, in shard order. *)
}

type result = {
  mode : string;  (** ["full"] or ["quick"]. *)
  jobs : int;
  total_txns : int;
  cross_fraction : float;
  legs : leg list;  (** Ascending shard count. *)
  replay_identical : bool;
      (** The re-run 4-shard leg matched field for field (wall
          excluded). *)
  checks : Exp_report.check list;
}

val run : ?quick:bool -> ?jobs:int -> unit -> result
(** [quick] (CI smoke) drops the 8-shard leg and shrinks the
    transaction count; [jobs] (default 1) fans each leg's shards over
    that many domains — deterministic fields are byte-identical to a
    sequential run. *)

val render : result -> string
val to_json : result -> Sim_json.t

val render_json : result -> string
(** [to_json] printed stably (two-space indent, trailing newline). *)

val validate_json : Sim_json.t -> (unit, string) Stdlib.result
(** Structural check used by [@shard-smoke] and `vpp_repro validate`:
    version tag, at least two legs with exact commit/abort accounting,
    conservation and bounded abort rate, the single-shard leg free of
    2PC/DSM work, multi-shard legs exchanging messages, strictly
    increasing aggregate TPS, replay identity, and every embedded check
    passing. *)
