(** The V++ global mapping hash table.

    The paper: "V++ augments the segment and bound region data structures
    with a global 64K entry direct mapped hash table with a 32 entry
    overflow area." This table is a {e cache} of virtual-to-physical
    translations; a miss falls back to walking the kernel's segment
    structures (which the kernel charges for separately). Keys are
    (address-space id, virtual page number). *)

type prot = { readable : bool; writable : bool }

type entry = { space : int; vpn : int; frame : int; prot : prot }

type t

val create : ?slots:int -> ?overflow:int -> unit -> t
(** Defaults: 65536 direct-mapped slots, 32 overflow entries. *)

val insert : t -> space:int -> vpn:int -> frame:int -> prot:prot -> unit
(** A colliding resident entry is pushed to the overflow area; when the
    overflow area is full its oldest entry is discarded (it can be rebuilt
    from segment structures on demand). *)

val lookup : t -> space:int -> vpn:int -> (int * prot) option
(** Updates hit/miss statistics. *)

val remove : t -> space:int -> vpn:int -> unit
val remove_space : t -> space:int -> unit
(** Drop all translations of one address space (space teardown). *)

val capacity : t -> int
(** Direct-mapped slot count ([slots] at {!create}). {!Hw_machine.create}
    sizes this to the physical frame count above the 64K default so warm
    scans of a large machine stay hash hits. *)

val hits : t -> int
val misses : t -> int
val collisions : t -> int
(** Number of insertions that displaced a resident entry. *)

val resident : t -> int
(** Currently cached translations (slots + overflow). *)
