(* Tests for the sharded transaction engine: the two-phase-commit
   coordinator (pure decision rule and effectful protocol), lock waits
   with deadlines, multi-instance manager coexistence, and the
   Db_shard/Exp_shard determinism and zero-delta invariants. *)

module L = Db_locks
module C = Db_coord
module Engine = Sim_engine
module Chaos = Sim_chaos

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* 2PC decision rule: qcheck differential vs the obvious reference     *)
(* ------------------------------------------------------------------ *)

(* The reference spells the rule out the long way: an empty ballot or
   any abort vote aborts; only a unanimous Prepared ballot commits. *)
let ref_decide votes =
  match votes with
  | [] -> C.Aborted
  | _ when List.exists (fun v -> v = C.Vote_abort) votes -> C.Aborted
  | _ -> C.Committed

let prop_decide_differential =
  let vote_gen = QCheck.map (fun b -> if b then C.Prepared else C.Vote_abort) QCheck.bool in
  QCheck.Test.make ~name:"decide = reference on random ballots" ~count:500
    QCheck.(list_of_size Gen.(0 -- 8) vote_gen)
    (fun votes -> C.decide votes = ref_decide votes)

(* ------------------------------------------------------------------ *)
(* The effectful protocol                                              *)
(* ------------------------------------------------------------------ *)

(* A coordinator on its own machine-less engine: Db_wal only needs a
   disk, and charges no-op outside a Hw_machine simulation. *)
let with_coord f =
  let engine = Engine.create () in
  let disk = Hw_disk.create engine () in
  let wal = Db_wal.create disk () in
  let coord = C.create ~wal () in
  Engine.spawn engine (fun () -> f coord);
  Engine.run engine;
  check_int "no leaked processes" 0 (Engine.live_processes engine);
  (coord, wal, disk, engine)

type probe = { mutable prepared : int; mutable committed : int; mutable aborted : int }

let participant ?(vote = C.Prepared) probe =
  {
    C.p_name = "probe";
    p_prepare =
      (fun () ->
        probe.prepared <- probe.prepared + 1;
        vote);
    p_commit = (fun () -> probe.committed <- probe.committed + 1);
    p_abort = (fun () -> probe.aborted <- probe.aborted + 1);
  }

let test_2pc_unanimous_commits () =
  let a = { prepared = 0; committed = 0; aborted = 0 } in
  let b = { prepared = 0; committed = 0; aborted = 0 } in
  let coord, wal, _, _ =
    with_coord (fun coord ->
        let outcome = C.run coord ~txn:7 [ participant a; participant b ] in
        check_bool "unanimous ballot commits" true (outcome = C.Committed))
  in
  check_int "both prepared" 2 (a.prepared + b.prepared);
  check_int "a committed once" 1 a.committed;
  check_int "b committed once" 1 b.committed;
  check_int "nobody aborted" 0 (a.aborted + b.aborted);
  (* Four messages per participant: prepare out, vote back, decision
     out, acknowledgement back. *)
  check_int "4 messages per participant" 8 (C.messages coord);
  check_int "prepares counted" 2 (C.prepares coord);
  check_int "committed counted" 1 (C.committed coord);
  (* The commit point is durable: the coordinator's commit record is on
     the flushed prefix, so recovery agrees. *)
  check_bool "commit record flushed" true (Db_wal.flushed wal >= 1);
  check_bool "recover agrees: committed" true (C.recover coord ~txn:7 = C.Committed);
  check_bool "recover presumes abort for unknown txns" true (C.recover coord ~txn:99 = C.Aborted)

let test_2pc_any_abort_aborts () =
  let a = { prepared = 0; committed = 0; aborted = 0 } in
  let b = { prepared = 0; committed = 0; aborted = 0 } in
  let coord, wal, _, _ =
    with_coord (fun coord ->
        let outcome = C.run coord ~txn:3 [ participant a; participant ~vote:C.Vote_abort b ] in
        check_bool "one abort vote aborts globally" true (outcome = C.Aborted))
  in
  check_int "abort delivered to every participant" 2 (a.aborted + b.aborted);
  check_int "nobody committed" 0 (a.committed + b.committed);
  check_int "aborted counted" 1 (C.aborted coord);
  (* No commit record was ever appended, so nothing reached the log. *)
  check_int "no commit record written" 0 (Db_wal.appended wal);
  check_bool "recover agrees: aborted" true (C.recover coord ~txn:3 = C.Aborted)

let test_2pc_empty_ballot_aborts () =
  check_bool "decide [] = Aborted" true (C.decide [] = C.Aborted)

(* Commit-flush failure is the interesting 2PC corner: every participant
   voted yes, but the commit record never reached the durable prefix.
   Presumed abort means the coordinator must abort everywhere and
   recovery must agree — the answer participants were given and the
   answer a restart computes from the flushed WAL must never diverge. *)
let test_2pc_commit_flush_failure_presumes_abort () =
  let engine = Engine.create () in
  let disk = Hw_disk.create engine () in
  let chaos = Chaos.create ~seed:33L { Chaos.default_spec with write_error_p = 1.0 } in
  Hw_disk.set_chaos disk (Some chaos);
  let wal = Db_wal.create disk ~retry:{ Mgr_backing.attempts = 2; backoff_us = 100.0 } () in
  let coord = C.create ~wal () in
  let a = { prepared = 0; committed = 0; aborted = 0 } in
  Engine.spawn engine (fun () ->
      let outcome = C.run coord ~txn:1 [ participant a ] in
      check_bool "flush failure aborts despite unanimous votes" true (outcome = C.Aborted));
  Engine.run engine;
  check_int "participant told to abort" 1 a.aborted;
  check_bool "recover agrees: aborted" true (C.recover coord ~txn:1 = C.Aborted);
  (* Heal the disk: the next transaction commits and recovery tracks it,
     while the aborted one stays aborted (its bookkeeping was dropped at
     the commit point, not left half-done). *)
  Hw_disk.set_chaos disk None;
  Engine.spawn engine (fun () ->
      let outcome = C.run coord ~txn:2 [ participant a ] in
      check_bool "healed disk commits" true (outcome = C.Committed));
  Engine.run engine;
  check_bool "recover: healed txn committed" true (C.recover coord ~txn:2 = C.Committed);
  check_bool "recover: torn txn still aborted" true (C.recover coord ~txn:1 = C.Aborted)

(* The storm version: random write faults across many transactions. The
   invariant under any fault schedule is agreement — for every txn, what
   the participants were told matches what recovery computes from the
   durable log. Deterministic per seed, like every storm here. *)
let test_2pc_chaos_storm_agreement () =
  let run_storm () =
    let engine = Engine.create () in
    let disk = Hw_disk.create engine () in
    let chaos = Chaos.create ~seed:555L { Chaos.default_spec with write_error_p = 0.4 } in
    Hw_disk.set_chaos disk (Some chaos);
    let wal = Db_wal.create disk ~retry:{ Mgr_backing.attempts = 2; backoff_us = 50.0 } () in
    let coord = C.create ~wal () in
    let outcomes = ref [] in
    Engine.spawn engine (fun () ->
        for txn = 1 to 60 do
          let p = { prepared = 0; committed = 0; aborted = 0 } in
          let outcome = C.run coord ~txn [ participant p; participant p ] in
          (* What the participants saw must match the outcome... *)
          check_int
            (Printf.sprintf "txn %d: decision delivered to both" txn)
            2
            (match outcome with C.Committed -> p.committed | C.Aborted -> p.aborted);
          (* ... and what recovery would answer, right now, too. *)
          check_bool
            (Printf.sprintf "txn %d: recovery agrees" txn)
            true
            (C.recover coord ~txn = outcome);
          outcomes := (txn, outcome) :: !outcomes
        done);
    Engine.run engine;
    (* Replaying recovery over the whole run after the storm: the
       durable log still answers exactly what each txn was told. *)
    List.iter
      (fun (txn, outcome) ->
        check_bool (Printf.sprintf "txn %d: post-storm recovery agrees" txn) true
          (C.recover coord ~txn = outcome))
      !outcomes;
    check_bool "the storm actually stormed" true (Chaos.injected_failures chaos > 0);
    check_bool "some transactions survived" true
      (List.exists (fun (_, o) -> o = C.Committed) !outcomes);
    check_bool "some transactions were torn" true
      (List.exists (fun (_, o) -> o = C.Aborted) !outcomes);
    (List.rev !outcomes, Chaos.schedule_fingerprint chaos)
  in
  let first = run_storm () in
  let second = run_storm () in
  check_bool "storm replays seed-for-seed" true (first = second)

(* ------------------------------------------------------------------ *)
(* Lock waits with deadlines                                           *)
(* ------------------------------------------------------------------ *)

let test_timeout_uncontended_grants () =
  let e = Engine.create () in
  let locks = L.create () in
  Engine.spawn e (fun () ->
      check_bool "free lock grants immediately" true
        (L.acquire_timeout locks ~txn:1 (L.Page (0, 1)) L.X ~timeout_us:1000.0);
      check_bool "held after grant" true (L.held locks ~txn:1 <> []);
      L.release_all locks ~txn:1);
  Engine.run e;
  check_int "no timer was forked" 0 (Engine.live_processes e);
  check_int "no timeouts" 0 (L.timeouts locks)

let test_timeout_expires () =
  let e = Engine.create () in
  let locks = L.create () in
  let verdict = ref None in
  Engine.spawn e (fun () ->
      L.acquire locks ~txn:1 L.Database L.X;
      Engine.delay 50_000.0;
      L.release_all locks ~txn:1);
  Engine.spawn e (fun () ->
      Engine.delay 10.0;
      let t0 = Engine.time () in
      let got = L.acquire_timeout locks ~txn:2 L.Database L.X ~timeout_us:1_000.0 in
      verdict := Some (got, Engine.time () -. t0));
  Engine.run e;
  (match !verdict with
  | Some (got, waited) ->
      check_bool "timed out with false" false got;
      check_bool "waited the deadline, not the holder" true (waited >= 1_000.0 && waited < 2_000.0)
  | None -> Alcotest.fail "waiter never resumed");
  check_int "timeout counted" 1 (L.timeouts locks);
  check_int "nothing held by the loser" 0 (List.length (L.held locks ~txn:2));
  check_int "nobody left blocked" 0 (L.waiting locks);
  check_int "all processes drained" 0 (Engine.live_processes e)

let test_timeout_granted_before_deadline () =
  let e = Engine.create () in
  let locks = L.create () in
  let verdict = ref None in
  Engine.spawn e (fun () ->
      L.acquire locks ~txn:1 L.Database L.X;
      Engine.delay 500.0;
      L.release_all locks ~txn:1);
  Engine.spawn e (fun () ->
      Engine.delay 10.0;
      let t0 = Engine.time () in
      let got = L.acquire_timeout locks ~txn:2 L.Database L.X ~timeout_us:60_000.0 in
      verdict := Some (got, Engine.time () -. t0);
      L.release_all locks ~txn:2);
  Engine.run e;
  (match !verdict with
  | Some (got, waited) ->
      check_bool "granted before the deadline" true got;
      check_bool "resumed at the release, not the deadline" true (waited < 1_000.0)
  | None -> Alcotest.fail "waiter never resumed");
  check_int "no timeouts" 0 (L.timeouts locks);
  (* The deadline process still runs to completion and finds a Granted
     waiter: a no-op, and nothing leaks. *)
  check_int "all processes drained" 0 (Engine.live_processes e)

let test_timeout_cancelled_head_unblocks_queue () =
  (* txn 1 holds S; txn 2 queues for X with a deadline; txn 3 queues for
     S behind it (FIFO, no overtaking). When txn 2's deadline cancels it,
     wake must skip the tombstone and grant txn 3 against the S holder —
     a cancelled head must not wedge the queue. *)
  let e = Engine.create () in
  let locks = L.create () in
  let t3_got_at = ref nan in
  Engine.spawn e (fun () ->
      L.acquire locks ~txn:1 L.Database L.S;
      Engine.delay 50_000.0;
      L.release_all locks ~txn:1);
  Engine.spawn e (fun () ->
      Engine.delay 10.0;
      check_bool "X waiter times out" false
        (L.acquire_timeout locks ~txn:2 L.Database L.X ~timeout_us:1_000.0));
  Engine.spawn e (fun () ->
      Engine.delay 20.0;
      L.acquire locks ~txn:3 L.Database L.S;
      t3_got_at := Engine.time ();
      L.release_all locks ~txn:3);
  Engine.run e;
  check_bool "S waiter was blocked by the queued X, then freed by its cancellation" true
    (!t3_got_at >= 1_000.0 && !t3_got_at < 2_000.0);
  check_int "exactly one timeout" 1 (L.timeouts locks);
  check_int "all processes drained" 0 (Engine.live_processes e)

(* ------------------------------------------------------------------ *)
(* Manager coexistence: several engines in one process                 *)
(* ------------------------------------------------------------------ *)

(* Two Mgr_dbms instances on one kernel: distinct manager names,
   relations on distinct backing files even at equal sizes (the historic
   1000+pages scheme collided), clean conservation across both. *)
let test_two_dbms_instances_one_kernel () =
  let machine = Hw_machine.create ~memory_bytes:(512 * 4096) () in
  let kernel = Epcm_kernel.create machine in
  let init = Epcm_kernel.initial_segment kernel in
  let next_slot = ref 0 in
  let source ~dst ~dst_page ~count =
    let init_seg = Epcm_kernel.segment kernel init in
    let granted = ref 0 in
    while !granted < count && !next_slot < Epcm_segment.length init_seg do
      (if (Epcm_segment.page init_seg !next_slot).Epcm_segment.frame <> None then begin
         Epcm_kernel.migrate_pages kernel ~src:init ~dst ~src_page:!next_slot
           ~dst_page:(dst_page + !granted) ~count:1 ();
         incr granted
       end);
      incr next_slot
    done;
    !granted
  in
  let m1 = Mgr_dbms.create kernel ~name:"dbms-a" ~source ~pool_capacity:32 () in
  let m2 = Mgr_dbms.create kernel ~name:"dbms-b" ~source ~pool_capacity:32 () in
  let file_of mgr seg =
    match Mgr_generic.segment_kind (Mgr_dbms.generic mgr) seg with
    | Some (Mgr_generic.File { file_id }) -> file_id
    | Some Mgr_generic.Anon | None -> Alcotest.fail "relation is not a File segment"
  in
  (* Same-size relations within one instance: distinct files. *)
  let r1a = Mgr_dbms.create_relation m1 ~name:"a-orders" ~pages:16 in
  let r1b = Mgr_dbms.create_relation m1 ~name:"a-lineitems" ~pages:16 in
  check_bool "same-size relations back onto distinct files" true (file_of m1 r1a <> file_of m1 r1b);
  (* And across instances each keeps its own file-id counter. *)
  let r2a = Mgr_dbms.create_relation m2 ~name:"b-orders" ~pages:16 in
  check_int "second instance starts its own file sequence" (file_of m1 r1a) (file_of m2 r2a);
  check_bool "relations are distinct segments" true
    (List.length (List.sort_uniq compare [ r1a; r1b; r2a ]) = 3);
  check_int "frame conservation across both managers"
    (Hw_machine.n_frames machine)
    (Epcm_kernel.frame_owner_total kernel);
  Alcotest.(check (list (pair int int)))
    "incremental audit = scan with two managers live"
    (Epcm_kernel.frame_owner_audit_scan kernel)
    (Epcm_kernel.frame_owner_audit kernel)

(* Two shard worlds built before either runs, then executed: results
   must equal fresh single builds — no hidden global state between
   engine instances in one process. *)
let test_two_shard_worlds_coexist () =
  let spec = { Db_shard.default with Db_shard.sp_shards = 2; sp_total_txns = 600 } in
  let w0 = Db_shard.build spec ~shard:0 in
  let w1 = Db_shard.build spec ~shard:1 in
  let r0 = Db_shard.execute w0 in
  let r1 = Db_shard.execute w1 in
  let fresh0 = Db_shard.run_shard spec ~shard:0 in
  let fresh1 = Db_shard.run_shard spec ~shard:1 in
  check_bool "shard 0: interleaved build = fresh run" true (r0 = fresh0);
  check_bool "shard 1: interleaved build = fresh run" true (r1 = fresh1);
  check_bool "the two shards did different work" true (r0 <> r1)

(* ------------------------------------------------------------------ *)
(* Db_shard: zero-delta, accounting, determinism                       *)
(* ------------------------------------------------------------------ *)

let small spec = { spec with Db_shard.sp_total_txns = 800 }

let test_single_shard_zero_delta () =
  let r = Db_shard.run_shard (small { Db_shard.default with Db_shard.sp_shards = 1 }) ~shard:0 in
  check_int "no 2PC messages" 0 r.Db_shard.r_msgs;
  check_int "no prepares" 0 r.Db_shard.r_prepares;
  check_int "no DSM transfers" 0 r.Db_shard.r_dsm_transfers;
  check_int "no cross-shard transactions" 0 r.Db_shard.r_cross;
  check_int "no lock timeouts" 0 r.Db_shard.r_lock_timeouts;
  check_int "no aborts" 0 r.Db_shard.r_aborts;
  check_int "every transaction committed" 800 r.Db_shard.r_commits;
  check_bool "conserved" true r.Db_shard.r_conserved

let test_multi_shard_accounting () =
  let spec = small Db_shard.default in
  let results = List.init spec.Db_shard.sp_shards (fun shard -> Db_shard.run_shard spec ~shard) in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 results in
  check_int "shares sum to the spec total" spec.Db_shard.sp_total_txns
    (total (fun r -> r.Db_shard.r_txns));
  check_int "commits + aborts = txns"
    (total (fun r -> r.Db_shard.r_txns))
    (total (fun r -> r.Db_shard.r_commits) + total (fun r -> r.Db_shard.r_aborts));
  check_int "local + cross = txns"
    (total (fun r -> r.Db_shard.r_txns))
    (total (fun r -> r.Db_shard.r_local) + total (fun r -> r.Db_shard.r_cross));
  check_bool "cross-shard work happened" true (total (fun r -> r.Db_shard.r_cross) > 0);
  check_bool "2PC messages flowed" true (total (fun r -> r.Db_shard.r_msgs) > 0);
  check_bool "DSM shipped pages" true (total (fun r -> r.Db_shard.r_dsm_transfers) > 0);
  List.iter
    (fun r ->
      check_bool
        (Printf.sprintf "shard %d conserved" r.Db_shard.r_shard)
        true r.Db_shard.r_conserved)
    results

let test_shard_deterministic () =
  let spec = small Db_shard.default in
  check_bool "same spec, same shard, same result" true
    (Db_shard.run_shard spec ~shard:2 = Db_shard.run_shard spec ~shard:2);
  check_bool "different shards differ" true
    (Db_shard.run_shard spec ~shard:0 <> Db_shard.run_shard spec ~shard:1)

let test_shard_txns_split () =
  let spec = { Db_shard.default with Db_shard.sp_shards = 4; sp_total_txns = 10 } in
  Alcotest.(check (list int))
    "even split, remainder to low shards" [ 3; 3; 2; 2 ]
    (List.init 4 (fun shard -> Db_shard.shard_txns spec ~shard))

(* ------------------------------------------------------------------ *)
(* Exp_shard: the record end to end                                    *)
(* ------------------------------------------------------------------ *)

let test_exp_shard_quick_record () =
  let r = Exp_shard.run ~quick:true ~jobs:2 () in
  if not (Exp_report.all_pass r.Exp_shard.checks) then
    Alcotest.fail
      (String.concat "; "
         (List.filter_map
            (fun c ->
              if c.Exp_report.pass then None
              else Some (c.Exp_report.what ^ " — " ^ c.Exp_report.detail))
            r.Exp_shard.checks));
  check_bool "replay identical" true r.Exp_shard.replay_identical;
  (match Exp_shard.validate_json (Exp_shard.to_json r) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("in-memory record invalid: " ^ e));
  match Sim_json.parse (Exp_shard.render_json r) with
  | Error e -> Alcotest.fail ("rendered record does not parse: " ^ e)
  | Ok json -> (
      match Exp_shard.validate_json json with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("round-tripped record invalid: " ^ e))

let () =
  Alcotest.run "shard"
    [
      ( "two-phase commit",
        [
          QCheck_alcotest.to_alcotest prop_decide_differential;
          Alcotest.test_case "unanimous ballot commits" `Quick test_2pc_unanimous_commits;
          Alcotest.test_case "any abort vote aborts" `Quick test_2pc_any_abort_aborts;
          Alcotest.test_case "empty ballot aborts" `Quick test_2pc_empty_ballot_aborts;
          Alcotest.test_case "commit-flush failure presumes abort" `Quick
            test_2pc_commit_flush_failure_presumes_abort;
          Alcotest.test_case "chaos storm: participants and recovery agree" `Quick
            test_2pc_chaos_storm_agreement;
        ] );
      ( "lock deadlines",
        [
          Alcotest.test_case "uncontended grant forks no timer" `Quick
            test_timeout_uncontended_grants;
          Alcotest.test_case "deadline expires into refusal" `Quick test_timeout_expires;
          Alcotest.test_case "grant before deadline" `Quick test_timeout_granted_before_deadline;
          Alcotest.test_case "cancelled head unblocks the queue" `Quick
            test_timeout_cancelled_head_unblocks_queue;
        ] );
      ( "coexistence",
        [
          Alcotest.test_case "two dbms managers on one kernel" `Quick
            test_two_dbms_instances_one_kernel;
          Alcotest.test_case "two shard worlds in one process" `Slow
            test_two_shard_worlds_coexist;
        ] );
      ( "shard engine",
        [
          Alcotest.test_case "single shard is zero-delta" `Quick test_single_shard_zero_delta;
          Alcotest.test_case "multi-shard accounting" `Slow test_multi_shard_accounting;
          Alcotest.test_case "deterministic per (spec, shard)" `Slow test_shard_deterministic;
          Alcotest.test_case "transaction split" `Quick test_shard_txns_split;
        ] );
      ( "record",
        [ Alcotest.test_case "quick record validates" `Slow test_exp_shard_quick_record ] );
    ]
