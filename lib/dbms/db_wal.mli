(** Write-ahead-log coordination between the DBMS and its segment manager.

    §2.1: with external page-cache management a manager "can coordinate
    writeback with the application, as is required for clean database
    transaction commit". The rule is the classic WAL invariant: a dirty
    data page must not reach disk before the log records describing its
    changes. A kernel-resident pager cannot know this ordering; an
    application segment manager enforces it in its eviction hook.

    The log buffers records in memory; [flush_to] writes them with one
    disk transfer per pending group (group commit). {!eviction_hook}
    wraps a {!Mgr_generic.hooks}' eviction decision so any writeback of a
    page with an unflushed LSN forces the log out first. *)

type t

type lsn = int
(** Log sequence numbers, monotonically increasing from 1. *)

exception Flush_failed of { lsn : lsn; attempts : int }
(** The log could not be forced to disk within the retry budget. [flushed]
    has not advanced: the durable prefix is intact and recovery replays
    from it (a torn write never acknowledges lost records). *)

val create :
  Hw_disk.t ->
  ?record_bytes:int ->
  ?retry:Mgr_backing.retry ->
  ?counters:Sim_stats.Counters.t ->
  unit ->
  t
(** [record_bytes] (default 256) sizes the disk transfer of a flush.
    [retry] bounds attempts per flush (default {!Mgr_backing.default_retry});
    [counters] receives "wal.flush_retries" / "wal.flush_failed" /
    "wal.eviction_vetoed" events. *)

val append : t -> lsn
(** Buffer one log record, returning its LSN. No I/O. *)

val note_page_write : t -> seg:Epcm_segment.id -> page:int -> lsn:lsn -> unit
(** Record that the page's latest modification is described by [lsn]. *)

val page_lsn : t -> seg:Epcm_segment.id -> page:int -> lsn option

val flush_to : t -> lsn:lsn -> unit
(** Force the log to disk up to and including [lsn] (no-op if already
    flushed). One disk write covers every pending record — group
    commit. Must run inside a simulation process.

    @raise Flush_failed when the retry budget is exhausted. *)

val commit : t -> lsn:lsn -> unit
(** Transaction commit: force the log through [lsn].

    @raise Flush_failed — the transaction is {e not} durable. *)

val flushed : t -> lsn
val appended : t -> lsn
val flushes : t -> int
(** Disk writes the log has performed. *)

val flush_retries : t -> int
(** Failed transfer attempts that were retried. *)

val flush_failures : t -> int
(** Flushes abandoned after exhausting the retry budget. *)

val wal_violations : t -> int
(** Writebacks that would have hit disk before their log records — always
    0 when the eviction hook is in place; counted for tests that bypass
    it. *)

val note_data_writeback : t -> seg:Epcm_segment.id -> page:int -> unit
(** Tell the log a data page is being written back (used by the eviction
    hook, and by tests to detect violations). *)

val eviction_hook :
  t ->
  inner:(seg:Epcm_segment.id -> page:int -> dirty:bool -> [ `Writeback | `Discard ]) ->
  seg:Epcm_segment.id ->
  page:int ->
  dirty:bool ->
  [ `Writeback | `Discard ]
(** Wrap an eviction decision with the WAL rule: if the inner policy says
    [`Writeback] and the page has an unflushed LSN, flush the log first.
    If even the retried flush fails, the hook raises
    {!Mgr_backing.Backing_failed} — the manager's vocabulary for "skip
    this page" — so the dirty data page stays resident rather than
    reaching disk ahead of its log records. *)
