(* Tests for the Ultrix 4.1 baseline kernel model. *)

module Engine = Sim_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

let setup ?resident_limit ?(frames = 256) () =
  let machine = Hw_machine.create ~memory_bytes:(frames * 4096) () in
  let uvm = Uvm.create ?resident_limit machine in
  (machine, uvm)

let timed machine f =
  let result = ref 0.0 in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let t0 = Engine.time () in
      f ();
      result := Engine.time () -. t0);
  Engine.run machine.Hw_machine.engine;
  !result

let test_fault_timing_175 () =
  let machine, uvm = setup () in
  let pid = Uvm.create_process uvm ~name:"p" in
  let t = timed machine (fun () -> Uvm.touch uvm pid ~vpn:0 ~access:Uvm.Write) in
  check_float "the paper's 175us" 175.0 t

let test_zero_fill_counted () =
  let _, uvm = setup () in
  let pid = Uvm.create_process uvm ~name:"p" in
  for v = 0 to 9 do
    Uvm.touch uvm pid ~vpn:v ~access:Uvm.Write
  done;
  check_int "ten zero fills" 10 (Uvm.stats uvm).Uvm.zero_fills;
  check_int "ten faults" 10 (Uvm.stats uvm).Uvm.faults;
  (* Re-touching is free of faults. *)
  Uvm.touch uvm pid ~vpn:0 ~access:Uvm.Read;
  check_int "warm touch no fault" 10 (Uvm.stats uvm).Uvm.faults

let test_reprotect_timing_152 () =
  let machine, uvm = setup () in
  let pid = Uvm.create_process uvm ~name:"p" in
  Uvm.touch uvm pid ~vpn:0 ~access:Uvm.Write;
  Uvm.protect uvm pid ~vpn:0;
  let t = timed machine (fun () -> Uvm.touch_protected uvm pid ~vpn:0) in
  check_float "the paper's 152us" 152.0 t;
  check_int "user fault counted" 1 (Uvm.stats uvm).Uvm.user_faults

let test_io_timing () =
  let machine, uvm = setup () in
  let fd = Uvm.open_file uvm ~file_id:1 ~size_kb:64 in
  Uvm.preload uvm fd;
  let read4 = timed machine (fun () -> Uvm.read uvm fd ~offset_kb:0 ~kb:4) in
  check_float "read 4KB = 211" 211.0 read4;
  let machine2, uvm2 = setup () in
  let fd2 = Uvm.open_file uvm2 ~file_id:1 ~size_kb:64 in
  Uvm.preload uvm2 fd2;
  let write4 = timed machine2 (fun () -> Uvm.write uvm2 fd2 ~offset_kb:0 ~kb:4) in
  check_float "write 4KB = 311" 311.0 write4

let test_io_8kb_transfer_unit () =
  let _, uvm = setup () in
  let fd = Uvm.open_file uvm ~file_id:1 ~size_kb:64 in
  Uvm.preload uvm fd;
  (* 32KB read = four 8KB system calls (V++ would need eight). *)
  Uvm.read uvm fd ~offset_kb:0 ~kb:32;
  check_int "four read calls" 4 (Uvm.stats uvm).Uvm.read_calls;
  Uvm.write uvm fd ~offset_kb:0 ~kb:20;
  check_int "ceil(20/8)=3 write calls" 3 (Uvm.stats uvm).Uvm.write_calls

let test_clock_replacement_under_pressure () =
  let machine, uvm = setup ~resident_limit:8 () in
  let pid = Uvm.create_process uvm ~name:"p" in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for v = 0 to 15 do
        Uvm.touch uvm pid ~vpn:v ~access:Uvm.Write
      done);
  Engine.run machine.Hw_machine.engine;
  check_bool "resident capped" true (Uvm.resident_pages uvm <= 8);
  (* Evicted dirty pages were paged out to swap. *)
  check_bool "page outs happened" true ((Uvm.stats uvm).Uvm.page_outs > 0)

let test_swap_in_after_eviction () =
  let machine, uvm = setup ~resident_limit:4 () in
  let pid = Uvm.create_process uvm ~name:"p" in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      for v = 0 to 7 do
        Uvm.touch uvm pid ~vpn:v ~access:Uvm.Write
      done;
      (* vpn 0 was evicted; touching it again must page in from disk,
         not zero-fill. *)
      let zeros_before = (Uvm.stats uvm).Uvm.zero_fills in
      Uvm.touch uvm pid ~vpn:0 ~access:Uvm.Read;
      Alcotest.(check int) "no new zero fill" zeros_before (Uvm.stats uvm).Uvm.zero_fills);
  Engine.run machine.Hw_machine.engine;
  check_bool "page in from swap" true ((Uvm.stats uvm).Uvm.page_ins > 0)

let test_exit_frees_pages () =
  let _, uvm = setup () in
  let pid = Uvm.create_process uvm ~name:"p" in
  for v = 0 to 4 do
    Uvm.touch uvm pid ~vpn:v ~access:Uvm.Write
  done;
  check_int "five resident" 5 (Uvm.resident_pages uvm);
  Uvm.exit_process uvm pid;
  check_int "all freed" 0 (Uvm.resident_pages uvm)

let test_transparency_no_information () =
  (* The point of the whole paper: the Ultrix interface exposes no
     page-cache information or control — its API simply has no way to ask.
     This "test" documents the asymmetry: the V++ kernel exports
     attributes; Uvm exports only aggregate stats. *)
  let _, uvm = setup () in
  let pid = Uvm.create_process uvm ~name:"p" in
  Uvm.touch uvm pid ~vpn:0 ~access:Uvm.Write;
  check_bool "only aggregate visibility" true ((Uvm.stats uvm).Uvm.touches = 1)

let prop_fault_cost_constant =
  QCheck.Test.make ~name:"every fresh anon fault costs exactly 175us" ~count:30
    QCheck.(int_range 1 50)
    (fun pages ->
      let machine, uvm = setup () in
      let pid = Uvm.create_process uvm ~name:"p" in
      let elapsed = timed machine (fun () ->
          for v = 0 to pages - 1 do
            Uvm.touch uvm pid ~vpn:v ~access:Uvm.Write
          done)
      in
      Float.abs (elapsed -. (175.0 *. float_of_int pages)) < 1e-6)

let () =
  Alcotest.run "ultrix"
    [
      ( "faults",
        [
          Alcotest.test_case "fault = 175us" `Quick test_fault_timing_175;
          Alcotest.test_case "zero fill counted" `Quick test_zero_fill_counted;
          Alcotest.test_case "reprotect = 152us" `Quick test_reprotect_timing_152;
        ] );
      ( "files",
        [
          Alcotest.test_case "read/write timing" `Quick test_io_timing;
          Alcotest.test_case "8KB transfer unit" `Quick test_io_8kb_transfer_unit;
        ] );
      ( "replacement",
        [
          Alcotest.test_case "clock under pressure" `Quick test_clock_replacement_under_pressure;
          Alcotest.test_case "swap in after eviction" `Quick test_swap_in_after_eviction;
          Alcotest.test_case "exit frees" `Quick test_exit_frees_pages;
          Alcotest.test_case "transparency" `Quick test_transparency_no_information;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_fault_cost_constant ]);
    ]
