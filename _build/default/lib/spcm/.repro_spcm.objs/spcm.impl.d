lib/spcm/spcm.ml: Epcm_kernel Epcm_manager Epcm_segment Fun Hashtbl Hw_cost Hw_machine Hw_phys_mem List Printf Sim_sync Spcm_market
