(** Backing store for segment managers: where page data comes from and goes
    to when it is not in memory.

    The paper's managers talk to a file server (Figure 2 steps 2–3) or to
    local disk. Two latency models are provided: [memory] (instant — used
    to reproduce the Tables 2–3 runs, where files were pre-cached exactly
    so that no I/O latency would mask VM costs) and [disk], which charges
    real simulated disk time and serialises on the disk arm.

    A [disk] store surfaces the device's injected faults ({!Hw_disk.Io_error})
    as a bounded retry-with-backoff loop: each failed attempt still costs
    full service time, retries wait an exponentially growing backoff, and
    exhaustion raises {!Backing_failed} for the manager above to degrade
    on. A [memory] store never fails. *)

type t

(** Bounded-retry policy for faulted transfers. [attempts] is the total
    number of tries (minimum 1); [backoff_us] the wait before the first
    retry, doubling on each subsequent one. *)
type retry = { attempts : int; backoff_us : float }

val default_retry : retry
(** 3 attempts, 2 ms initial backoff. *)

exception Backing_failed of { op : Hw_disk.op; file : int; block : int; attempts : int }
(** All attempts failed. Carries the logical address so the manager can
    decide per-page (skip this writeback, demand-fill later, …). *)

val memory : ?retry:retry -> ?counters:Sim_stats.Counters.t -> unit -> t
val disk : ?retry:retry -> ?counters:Sim_stats.Counters.t -> Hw_disk.t -> page_bytes:int -> t

val disk_block : file:int -> block:int -> int
(** The device block number a (file, block) pair maps to —
    [file * 1_000_000 + block]. Chaos specs use it to target a specific
    logical block as permanently bad. *)

val read_block : t -> file:int -> block:int -> Hw_page_data.t
(** Contents of a file block. Unwritten blocks read as the symbolic
    version-0 block. Blocks the calling process on a [disk] store.

    @raise Backing_failed after the retry budget is exhausted. *)

val write_block : t -> file:int -> block:int -> Hw_page_data.t -> unit
(** @raise Backing_failed after the retry budget is exhausted. *)

val has_block : t -> file:int -> block:int -> bool
(** Has this block ever been written? (No latency charged — the manager's
    own directory answers this.) Anonymous-page managers use it to
    distinguish "fresh page" from "paged out to swap". *)

val reads : t -> int
(** Logical reads (each counted once, however many device attempts). *)

val writes : t -> int

val io_retries : t -> int
(** Device attempts beyond the first, summed over all operations. *)

val io_failures : t -> int
(** Operations abandoned after exhausting the retry budget. *)
