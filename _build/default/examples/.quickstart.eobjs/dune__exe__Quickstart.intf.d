examples/quickstart.mli:
