(** Throughput record (`vpp_repro perf`, [BENCH_perf.json]).

    Runs the {!Wl_scale} workload at increasing machine sizes and measures
    {e host} wall-clock throughput (simulation events, faults and migrated
    pages per second), then times the domain-parallel experiment driver
    ({!Exp_par}) against its sequential equivalent on a fixed task list and
    checks the joined outputs are byte-identical. Emits a versioned,
    schema-stable JSON record so perf regressions across PRs are a
    machine-readable diff, like the [vpp-profile/1] record next to it.

    The simulated side of every run is deterministic; only the [wall_s]
    and derived per-second fields vary between hosts. Diff two records by
    comparing the deterministic count fields exactly and the throughput
    fields as ratios. *)

val schema_version : string
(** ["vpp-perf/1"]. Bump when the record layout changes. *)

type scale_row = {
  s_result : Wl_scale.result;
  s_wall_s : float;  (** Host seconds for the whole run. *)
}

type driver = {
  d_jobs : int;  (** Domains the parallel leg used. *)
  d_sequential_s : float;
  d_parallel_s : float;
  d_identical : bool;
      (** The parallel driver's joined output was byte-identical to the
          sequential one. *)
}

type result = {
  mode : string;  (** ["full"] or ["quick"]. *)
  scales : scale_row list;
  driver : driver;
  checks : Exp_report.check list;
}

val run : ?quick:bool -> ?jobs:int -> unit -> result
(** [quick] drops the largest machine size (CI smoke); [jobs] sets the
    parallel driver leg's domain count (default
    [Exp_par.default_jobs ()]). *)

val render : result -> string

val to_json : result -> Sim_json.t

val render_json : result -> string
(** [to_json] printed stably (two-space indent, trailing newline). *)

val validate_json : Sim_json.t -> (unit, string) Stdlib.result
(** Structural schema check used by the perf-smoke rule: version string,
    at least two scales with positive deterministic counts and frame
    conservation, a driver leg whose parallel output matched, and all
    embedded shape checks passing. *)
