examples/gc_discard.ml: Epcm_kernel Epcm_manager Epcm_segment Hw_disk Hw_machine Hw_page_data Mgr_gc Printf Sim_engine
