lib/experiments/exp_table3.ml: Exp_report List Printf Wl_apps Wl_run Wl_trace
