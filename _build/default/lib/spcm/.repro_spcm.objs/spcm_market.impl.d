lib/spcm/spcm_market.ml: Float Hashtbl List Option Printf
