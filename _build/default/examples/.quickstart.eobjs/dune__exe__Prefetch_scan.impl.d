examples/prefetch_scan.ml: Epcm_kernel Epcm_manager Epcm_segment Hw_disk Hw_machine Mgr_prefetch Printf Sim_engine
