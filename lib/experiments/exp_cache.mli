(** Page-coloring payoff record (`vpp_repro cache`, schema vpp-cache/1):
    the same deterministic hot-set trace under sequential, random and
    colored frame placement on a machine carrying a physically-indexed
    L2 ({!Hw_machine.create} [?cache]), plus a tier-scoped colored leg
    on a fast+slow machine.

    The headline embedded check — and what {!validate_json} re-derives
    from the record — is that colored placement beats random (and
    sequential) on cache miss rate, with frame conservation and
    cache-stat conservation ([accesses = hits + misses]) holding in
    every leg, and the seeded random leg replaying identically. No
    wall-clock anywhere: the record is bit-identical across reruns. *)

type leg = {
  l_mode : string;  (** "sequential" | "random" | "colored" | "colored (tiered)" *)
  l_frames : int;
  l_touches : int;
  l_faults : int;
  l_migrate_calls : int;
  l_migrated_pages : int;
  l_accesses : int;
  l_hits : int;
  l_misses : int;
  l_miss_rate : float;
  l_color_misses : int;  (** {!Mgr_coloring.color_misses}; 0 for uncolored legs. *)
  l_audit_good : int;  (** {!Mgr_coloring.audit}; (0, 0) for uncolored legs. *)
  l_audit_total : int;
  l_events : int;
  l_sim_us : float;
  l_conserved : bool;
}

type result = {
  mode : string;  (** "full" | "quick" *)
  rounds : int;  (** hot-set hammer passes *)
  n_colors : int;  (** page colors the cache geometry induces *)
  legs : leg list;
  replay_identical : bool;  (** seeded random leg reran bit-identically *)
  checks : Exp_report.check list;
}

val schema_version : string
(** ["vpp-cache/1"]. *)

val run : ?quick:bool -> ?jobs:int -> unit -> result
(** [quick] shrinks the hammer rounds; [jobs] fans the five independent
    leg simulations over domains (in-order join — the assembled record
    is identical to a sequential run). *)

val render : result -> string
val to_json : result -> Sim_json.t
val render_json : result -> string

val validate_json : Sim_json.t -> (unit, string) Stdlib.result
(** Machine-check a parsed record: schema tag, per-leg conservation
    (frames and cache stats), miss rates in range, colored < random and
    colored < sequential on miss rate, deterministic replay, and every
    embedded check passing. *)
