examples/quickstart.ml: Array Epcm_flags Epcm_kernel Epcm_manager Epcm_segment Hw_machine Hw_page_data Mgr_backing Mgr_generic Option Printf Sim_trace
