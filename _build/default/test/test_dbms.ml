(* Tests for the database substrate: the hierarchical lock manager and the
   transaction engine. *)

module L = Db_locks
module Engine = Sim_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Compatibility matrix                                                *)
(* ------------------------------------------------------------------ *)

let test_compat_matrix () =
  let expect a b v =
    check_bool
      (Format.asprintf "%a/%a" L.pp_mode a L.pp_mode b)
      v (L.compatible a b)
  in
  expect L.IS L.IS true;
  expect L.IS L.IX true;
  expect L.IS L.S true;
  expect L.IS L.X false;
  expect L.IX L.IX true;
  expect L.IX L.S false;
  expect L.IX L.X false;
  expect L.S L.S true;
  expect L.S L.X false;
  expect L.X L.X false

let prop_compat_symmetric =
  let mode_gen = QCheck.oneofl [ L.IS; L.IX; L.S; L.X ] in
  QCheck.Test.make ~name:"lock compatibility is symmetric" ~count:100
    QCheck.(pair mode_gen mode_gen)
    (fun (a, b) -> L.compatible a b = L.compatible b a)

let test_covers () =
  check_bool "X covers S" true (L.covers ~held:L.X ~wanted:L.S);
  check_bool "S covers IS" true (L.covers ~held:L.S ~wanted:L.IS);
  check_bool "IX covers IS" true (L.covers ~held:L.IX ~wanted:L.IS);
  check_bool "S does not cover IX" false (L.covers ~held:L.S ~wanted:L.IX);
  check_bool "IS does not cover S" false (L.covers ~held:L.IS ~wanted:L.S)

(* ------------------------------------------------------------------ *)
(* Blocking behaviour                                                  *)
(* ------------------------------------------------------------------ *)

let test_exclusive_blocks_and_fifo () =
  let e = Engine.create () in
  let locks = L.create () in
  let order = ref [] in
  Engine.spawn e (fun () ->
      L.acquire locks ~txn:1 L.Database L.X;
      Engine.delay 100.0;
      order := "t1-release" :: !order;
      L.release_all locks ~txn:1);
  Engine.spawn e (fun () ->
      Engine.delay 10.0;
      L.acquire locks ~txn:2 L.Database L.X;
      order := "t2-got" :: !order;
      L.release_all locks ~txn:2);
  Engine.spawn e (fun () ->
      Engine.delay 20.0;
      L.acquire locks ~txn:3 L.Database L.X;
      order := "t3-got" :: !order;
      L.release_all locks ~txn:3);
  Engine.run e;
  Alcotest.(check (list string))
    "FIFO grant order" [ "t1-release"; "t2-got"; "t3-got" ] (List.rev !order);
  check_int "blocked twice in total" 2 (L.total_blocked locks)

let test_shared_coexist () =
  let e = Engine.create () in
  let locks = L.create () in
  let concurrently = ref 0 and peak = ref 0 in
  for t = 1 to 3 do
    Engine.spawn e (fun () ->
        L.acquire locks ~txn:t (L.Relation 1) L.S;
        incr concurrently;
        if !concurrently > !peak then peak := !concurrently;
        Engine.delay 50.0;
        decr concurrently;
        L.release_all locks ~txn:t)
  done;
  Engine.run e;
  check_int "all shared at once" 3 !peak;
  check_int "nobody blocked" 0 (L.total_blocked locks)

let test_intention_hierarchy_conflict () =
  (* The Table 4 mechanism: X on the database node blocks every IX
     acquirer (the index latch convoy). *)
  let e = Engine.create () in
  let locks = L.create () in
  let blocked_interval = ref (0.0, 0.0) in
  Engine.spawn e (fun () ->
      L.acquire locks ~txn:1 L.Database L.X;
      Engine.delay 1000.0;
      L.release_all locks ~txn:1);
  Engine.spawn e (fun () ->
      Engine.delay 1.0;
      let t0 = Engine.time () in
      L.acquire locks ~txn:2 L.Database L.IX;
      blocked_interval := (t0, Engine.time ());
      L.release_all locks ~txn:2);
  Engine.run e;
  let t0, t1 = !blocked_interval in
  check_bool "IX waited for the X holder" true (t1 -. t0 > 990.0)

let test_no_overtaking_x_waiter () =
  (* An IX request arriving after a queued X must not sneak past it, or
     the X could starve. *)
  let e = Engine.create () in
  let locks = L.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      L.acquire locks ~txn:1 L.Database L.IX;
      Engine.delay 100.0;
      L.release_all locks ~txn:1);
  Engine.spawn e (fun () ->
      Engine.delay 5.0;
      L.acquire locks ~txn:2 L.Database L.X;
      log := "x-got" :: !log;
      Engine.delay 10.0;
      L.release_all locks ~txn:2);
  Engine.spawn e (fun () ->
      Engine.delay 10.0;
      (* Compatible with the IX holder, but queued behind the X waiter. *)
      L.acquire locks ~txn:3 L.Database L.IX;
      log := "ix-got" :: !log;
      L.release_all locks ~txn:3);
  Engine.run e;
  Alcotest.(check (list string)) "X first, then the later IX" [ "x-got"; "ix-got" ]
    (List.rev !log)

let test_reacquire_held_is_noop () =
  let e = Engine.create () in
  let locks = L.create () in
  Engine.spawn e (fun () ->
      L.acquire locks ~txn:1 (L.Relation 0) L.X;
      L.acquire locks ~txn:1 (L.Relation 0) L.S;
      (* covered by X *)
      L.acquire locks ~txn:1 (L.Relation 0) L.X;
      check_int "held one resource" 1 (List.length (L.held locks ~txn:1));
      L.release_all locks ~txn:1);
  Engine.run e;
  check_int "no self-blocking" 0 (L.total_blocked locks)

let test_upgrade_rejected () =
  let e = Engine.create () in
  let locks = L.create () in
  let raised = ref false in
  Engine.spawn e (fun () ->
      L.acquire locks ~txn:1 (L.Relation 0) L.S;
      (match L.acquire locks ~txn:1 (L.Relation 0) L.X with
      | () -> ()
      | exception Invalid_argument _ -> raised := true);
      L.release_all locks ~txn:1);
  Engine.run e;
  check_bool "upgrade rejected" true !raised

let test_try_acquire () =
  let e = Engine.create () in
  let locks = L.create () in
  Engine.spawn e (fun () ->
      check_bool "first try succeeds" true (L.try_acquire locks ~txn:1 L.Database L.X);
      check_bool "conflicting try fails" false (L.try_acquire locks ~txn:2 L.Database L.IS);
      L.release_all locks ~txn:1;
      check_bool "after release succeeds" true (L.try_acquire locks ~txn:2 L.Database L.IS));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* B+-tree layout                                                     *)
(* ------------------------------------------------------------------ *)

let test_btree_1mb_shape () =
  (* The Table 4 index: 256 pages at fanout 128 is a 3-level tree. *)
  let t = Db_btree.create ~pages:256 () in
  check_int "three levels" 3 (Db_btree.depth t);
  check_bool "uses most of the budget" true (Db_btree.pages t > 250 && Db_btree.pages t <= 256);
  check_int "path length = depth" 3 (List.length (Db_btree.lookup_path t ~key:12345))

let test_btree_single_page () =
  let t = Db_btree.create ~pages:1 () in
  check_int "one level" 1 (Db_btree.depth t);
  check_int "path is the root" 1 (List.length (Db_btree.lookup_path t ~key:0));
  Alcotest.(check (list int)) "root only" [ 0 ] (Db_btree.lookup_path t ~key:7)

let test_btree_path_structure () =
  let t = Db_btree.create ~fanout:4 ~pages:30 () in
  (* Every path starts at the root, ends at the key's leaf, and every page
     is in range. *)
  for key = 0 to Db_btree.keys t - 1 do
    match Db_btree.lookup_path t ~key with
    | [] -> Alcotest.fail "empty path"
    | root :: _ as path ->
        check_int "starts at root" (Db_btree.root_page t) root;
        check_int "ends at leaf" (Db_btree.leaf_of_key t ~key)
          (List.nth path (List.length path - 1));
        List.iter
          (fun p ->
            if p < 0 || p >= Db_btree.pages t then
              Alcotest.failf "page %d out of range for key %d" p key)
          path
  done

let prop_btree_paths_valid =
  QCheck.Test.make ~name:"btree: every lookup path is root-to-leaf within bounds" ~count:100
    QCheck.(pair (int_range 2 16) (int_range 1 300))
    (fun (fanout, pages) ->
      let t = Db_btree.create ~fanout ~pages () in
      let ok = ref (Db_btree.pages t <= max pages 1) in
      for key = 0 to min (Db_btree.keys t - 1) 500 do
        let path = Db_btree.lookup_path t ~key in
        if List.length path <> Db_btree.depth t then ok := false;
        if List.hd path <> Db_btree.root_page t then ok := false;
        List.iter (fun p -> if p < 0 || p >= Db_btree.pages t then ok := false) path
      done;
      !ok)

let prop_btree_same_leaf_same_path =
  QCheck.Test.make ~name:"btree: keys in the same leaf share the whole path" ~count:100
    QCheck.(int_range 0 10_000)
    (fun key ->
      let t = Db_btree.create ~pages:256 () in
      let k1 = key - (key mod Db_btree.fanout t) in
      (* first key of the leaf *)
      Db_btree.lookup_path t ~key:k1 = Db_btree.lookup_path t ~key:(k1 + 1))

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let quick cfg = { cfg with Db_config.duration_s = 90.0; warmup_s = 10.0; seed = 7L }

let test_engine_smoke_all_configs () =
  List.iter
    (fun cfg ->
      let r = Db_engine.run (quick cfg) in
      check_bool (cfg.Db_config.label ^ ": transactions ran") true (r.Db_engine.txns > 500);
      check_bool (cfg.Db_config.label ^ ": avg positive") true (r.Db_engine.avg_ms > 0.0);
      check_bool (cfg.Db_config.label ^ ": worst >= avg") true
        (r.Db_engine.worst_ms >= r.Db_engine.avg_ms);
      check_bool (cfg.Db_config.label ^ ": frames conserved") true r.Db_engine.frames_conserved)
    Db_config.all_paper_configs

let test_engine_ordering_quick () =
  let run cfg = (Db_engine.run (quick cfg)).Db_engine.avg_ms in
  let in_mem = run Db_config.index_in_memory in
  let no_index = run Db_config.no_index in
  let paging = run Db_config.index_with_paging in
  let regen = run Db_config.index_regeneration in
  check_bool "in-memory at least as good as regeneration" true (in_mem <= regen *. 1.15);
  check_bool "regen beats paging by a lot" true (regen *. 3.0 < paging);
  check_bool "no-index an order worse than in-memory" true (no_index > in_mem *. 5.0)

let test_engine_paging_reloads_happen () =
  let r = Db_engine.run (quick Db_config.index_with_paging) in
  check_bool "page-ins observed" true (r.Db_engine.page_in_events > 0);
  check_int "no regenerations in paging mode" 0 r.Db_engine.regenerations

let test_engine_regen_mode_regenerates () =
  let r = Db_engine.run (quick Db_config.index_regeneration) in
  check_bool "regenerations observed" true (r.Db_engine.regenerations > 0);
  check_int "no disk page-ins in regen mode" 0 r.Db_engine.page_in_events

let test_engine_deterministic () =
  let a = Db_engine.run (quick Db_config.index_in_memory) in
  let b = Db_engine.run (quick Db_config.index_in_memory) in
  check_bool "same avg" true (a.Db_engine.avg_ms = b.Db_engine.avg_ms);
  check_int "same txns" a.Db_engine.txns b.Db_engine.txns

(* ------------------------------------------------------------------ *)
(* Write-ahead-log coordination                                       *)
(* ------------------------------------------------------------------ *)

let wal_setup () =
  let machine, kernel, source = 
    let machine = Hw_machine.create ~memory_bytes:(256 * 4096) () in
    let kernel = Epcm_kernel.create machine in
    let init = Epcm_kernel.initial_segment kernel in
    let next = ref 0 in
    let source ~dst ~dst_page ~count =
      let init_seg = Epcm_kernel.segment kernel init in
      let granted = ref 0 in
      while !granted < count && !next < Epcm_segment.length init_seg do
        (if (Epcm_segment.page init_seg !next).Epcm_segment.frame <> None then begin
           Epcm_kernel.migrate_pages kernel ~src:init ~dst ~src_page:!next
             ~dst_page:(dst_page + !granted) ~count:1 ();
           incr granted
         end);
        incr next
      done;
      !granted
    in
    (machine, kernel, source)
  in
  let wal = Db_wal.create machine.Hw_machine.disk () in
  let backing = Mgr_backing.memory () in
  let base = Mgr_generic.default_hooks ~backing in
  let hooks =
    {
      base with
      Mgr_generic.on_eviction =
        (fun ~seg ~page ~dirty ->
          Db_wal.eviction_hook wal ~inner:base.Mgr_generic.on_eviction ~seg ~page ~dirty);
    }
  in
  let g =
    Mgr_generic.create kernel ~name:"wal-mgr" ~mode:`In_process ~backing ~source ~hooks
      ~pool_capacity:64 ()
  in
  let seg =
    Mgr_generic.create_segment g ~name:"data" ~pages:8 ~kind:(Mgr_generic.File { file_id = 1 })
      ~high_water:8 ()
  in
  (machine, kernel, wal, g, seg)

let test_wal_group_commit () =
  let machine, _, wal, _, _ = wal_setup () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      let lsns = List.init 10 (fun _ -> Db_wal.append wal) in
      Db_wal.commit wal ~lsn:(List.nth lsns 9);
      check_int "one disk write for ten records" 1 (Db_wal.flushes wal);
      check_int "flushed through" 10 (Db_wal.flushed wal);
      (* Committing an already-flushed LSN is free. *)
      Db_wal.commit wal ~lsn:5;
      check_int "idempotent" 1 (Db_wal.flushes wal));
  Engine.run machine.Hw_machine.engine

let test_wal_eviction_forces_log_first () =
  let machine, kernel, wal, g, seg = wal_setup () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      (* A transaction modifies page 2 under LSN 1, uncommitted. *)
      Epcm_kernel.touch kernel ~space:seg ~page:2 ~access:Epcm_manager.Write;
      let lsn = Db_wal.append wal in
      Db_wal.note_page_write wal ~seg ~page:2 ~lsn;
      check_int "log unflushed" 0 (Db_wal.flushed wal);
      (* Memory pressure evicts the dirty page: the WAL hook must flush
         the log before the data writeback. *)
      let got = Mgr_generic.reclaim g ~count:8 in
      check_bool "something evicted" true (got >= 1);
      check_bool "log flushed by the eviction" true (Db_wal.flushed wal >= lsn);
      check_int "no WAL violations" 0 (Db_wal.wal_violations wal));
  Engine.run machine.Hw_machine.engine

let test_wal_violation_detected_without_hook () =
  let machine, _, _, _, _ = wal_setup () in
  (* A manager that ignores the WAL rule is observable: writing back a
     page whose records are unflushed counts as a violation. *)
  let wal = Db_wal.create machine.Hw_machine.disk () in
  let lsn = Db_wal.append wal in
  Db_wal.note_page_write wal ~seg:42 ~page:0 ~lsn;
  Db_wal.note_data_writeback wal ~seg:42 ~page:0;
  check_int "violation counted" 1 (Db_wal.wal_violations wal)

let test_wal_clean_pages_need_no_flush () =
  let machine, kernel, wal, g, seg = wal_setup () in
  Engine.spawn machine.Hw_machine.engine (fun () ->
      (* Read-only pages evict without touching the log. *)
      Epcm_kernel.touch kernel ~space:seg ~page:0 ~access:Epcm_manager.Read;
      ignore (Mgr_generic.reclaim g ~count:4);
      check_int "no log flushes" 0 (Db_wal.flushes wal));
  Engine.run machine.Hw_machine.engine

let prop_ordered_acquisition_no_deadlock =
  (* Random transactions acquiring random resource sets in the canonical
     order (database, relations ascending, pages ascending) always drain:
     no deadlock, no lost wakeups. *)
  QCheck.Test.make ~name:"ordered acquisition always drains" ~count:40
    QCheck.(pair (int_range 2 12) (int_bound 1000))
    (fun (n_txns, seed) ->
      let e = Engine.create () in
      let locks = L.create () in
      let rng = Sim_rng.create (Int64.of_int seed) in
      let completed = ref 0 in
      for txn = 1 to n_txns do
        let wants_db_x = Sim_rng.bernoulli rng 0.1 in
        let rels =
          List.init 3 (fun r -> (r, Sim_rng.int rng 4))
          |> List.filter_map (fun (r, m) ->
                 match m with
                 | 0 -> None
                 | 1 -> Some (L.Relation r, L.IS)
                 | 2 -> Some (L.Relation r, L.IX)
                 | _ -> Some (L.Relation r, L.S))
        in
        let pages =
          List.filter_map
            (fun (res, m) ->
              match (res, m) with
              | L.Relation r, L.IX when Sim_rng.bernoulli rng 0.7 ->
                  Some (L.Page (r, Sim_rng.int rng 4), L.X)
              | _ -> None)
            rels
        in
        Engine.spawn e (fun () ->
            Engine.delay (Sim_rng.uniform rng ~lo:0.0 ~hi:50.0);
            if wants_db_x then L.acquire locks ~txn L.Database L.X
            else begin
              L.acquire locks ~txn L.Database L.IX;
              List.iter (fun (res, m) -> L.acquire locks ~txn res m) rels;
              List.iter (fun (res, m) -> L.acquire locks ~txn res m) pages
            end;
            Engine.delay (Sim_rng.uniform rng ~lo:0.0 ~hi:20.0);
            L.release_all locks ~txn;
            incr completed)
      done;
      Engine.run e;
      !completed = n_txns && Engine.live_processes e = 0 && L.waiting locks = 0)

let () =
  Alcotest.run "dbms"
    [
      ( "locks",
        [
          Alcotest.test_case "compat matrix" `Quick test_compat_matrix;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "X blocks, FIFO" `Quick test_exclusive_blocks_and_fifo;
          Alcotest.test_case "shared coexist" `Quick test_shared_coexist;
          Alcotest.test_case "intention hierarchy conflict" `Quick
            test_intention_hierarchy_conflict;
          Alcotest.test_case "no overtaking" `Quick test_no_overtaking_x_waiter;
          Alcotest.test_case "reacquire noop" `Quick test_reacquire_held_is_noop;
          Alcotest.test_case "upgrade rejected" `Quick test_upgrade_rejected;
          Alcotest.test_case "try acquire" `Quick test_try_acquire;
        ] );
      ( "wal",
        [
          Alcotest.test_case "group commit" `Quick test_wal_group_commit;
          Alcotest.test_case "eviction forces log first" `Quick
            test_wal_eviction_forces_log_first;
          Alcotest.test_case "violation detectable" `Quick
            test_wal_violation_detected_without_hook;
          Alcotest.test_case "clean pages free" `Quick test_wal_clean_pages_need_no_flush;
        ] );
      ( "btree",
        [
          Alcotest.test_case "1MB index shape" `Quick test_btree_1mb_shape;
          Alcotest.test_case "single page" `Quick test_btree_single_page;
          Alcotest.test_case "path structure" `Quick test_btree_path_structure;
        ] );
      ( "engine",
        [
          Alcotest.test_case "smoke all configs" `Slow test_engine_smoke_all_configs;
          Alcotest.test_case "ordering (quick)" `Slow test_engine_ordering_quick;
          Alcotest.test_case "paging reloads" `Slow test_engine_paging_reloads_happen;
          Alcotest.test_case "regen regenerates" `Slow test_engine_regen_mode_regenerates;
          Alcotest.test_case "deterministic" `Slow test_engine_deterministic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_compat_symmetric;
            prop_btree_paths_valid;
            prop_btree_same_leaf_same_path;
            prop_ordered_acquisition_no_deadlock;
          ] );
    ]
