lib/managers/mgr_free_pages.mli: Epcm_flags Epcm_kernel Epcm_segment Hw_page_data
