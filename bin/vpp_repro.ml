(* Command-line driver: regenerate each table and figure of the paper. *)

open Cmdliner

let run_table1 () = print_string (Exp_table1.render (Exp_table1.run ()))
let run_table2 () = print_string (Exp_table2.render (Exp_table2.run ()))
let run_table3 () = print_string (Exp_table3.render (Exp_table3.run ()))

let run_table4 quick () = print_string (Exp_table4.render (Exp_table4.run ~quick ()))

let run_figures () = print_string (Exp_figures.render (Exp_figures.run ()))

let run_stats () = print_string (Exp_substrate.render (Exp_substrate.run ()))

let run_chaos seed () = print_string (Exp_chaos.render (Exp_chaos.run ?seed ()))

let run_profile json () =
  let r = Exp_profile.run () in
  if json then print_string (Exp_profile.render_json r) else print_string (Exp_profile.render r)

(* The ablations and the [all] group are independent deterministic
   experiments; with --jobs they fan out over domains via Exp_par, whose
   in-order join keeps the printed bytes identical to a sequential run. *)

let run_ablations jobs () =
  print_string
    (Exp_par.concat ~jobs ~sep:""
       (List.map
          (fun run () -> Exp_ablations.render (run ()) ^ "\n")
          [
            Exp_ablations.append_batch;
            Exp_ablations.delivery_mode;
            Exp_ablations.reprotect_batch;
            Exp_ablations.regeneration_crossover;
            Exp_ablations.eviction_destination;
          ]))

let run_all quick jobs () =
  print_string
    (Exp_par.concat ~jobs ~sep:"\n"
       [
         (fun () -> Exp_table1.render (Exp_table1.run ()));
         (fun () -> Exp_table2.render (Exp_table2.run ()));
         (fun () -> Exp_table3.render (Exp_table3.run ()));
         (fun () -> Exp_table4.render (Exp_table4.run ~quick ()));
         (fun () -> Exp_figures.render (Exp_figures.run ()));
       ])

let run_perf quick json jobs out () =
  let r = Exp_scale.run ~quick ?jobs () in
  let record = Exp_scale.render_json r in
  let oc = open_out out in
  output_string oc record;
  close_out oc;
  if json then print_string record
  else begin
    print_string (Exp_scale.render r);
    Printf.printf "(machine-readable record written to %s)\n" out
  end;
  if not (Exp_report.all_pass r.Exp_scale.checks) then exit 1

(* Schema dispatch lives in Exp_validate (one validator per record
   schema, keyed by the record's own "schema" tag); this is just the
   file-and-exit-status shell around it. *)
let run_validate file () =
  let contents =
    try In_channel.with_open_text file In_channel.input_all
    with Sys_error e ->
      Printf.eprintf "%s\n" e;
      exit 1
  in
  match Exp_validate.validate_string contents with
  | Ok tag -> Printf.printf "%s: valid %s record\n" file tag
  | Error e ->
      Printf.eprintf "%s: %s\n" file e;
      exit 1

let run_market quick json jobs out () =
  let r = Exp_market.run ~quick ?jobs () in
  let record = Exp_market.render_json r in
  let oc = open_out out in
  output_string oc record;
  close_out oc;
  if json then print_string record
  else begin
    print_string (Exp_market.render r);
    Printf.printf "(machine-readable record written to %s)\n" out
  end;
  if not (Exp_report.all_pass r.Exp_market.checks) then exit 1

let run_tier quick json jobs out () =
  let r = Exp_tier.run ~quick ~jobs () in
  let record = Exp_tier.render_json r in
  let oc = open_out out in
  output_string oc record;
  close_out oc;
  if json then print_string record
  else begin
    print_string (Exp_tier.render r);
    Printf.printf "(machine-readable record written to %s)\n" out
  end;
  if not (Exp_report.all_pass r.Exp_tier.checks) then exit 1

let run_cache quick json jobs out () =
  let r = Exp_cache.run ~quick ~jobs () in
  let record = Exp_cache.render_json r in
  let oc = open_out out in
  output_string oc record;
  close_out oc;
  if json then print_string record
  else begin
    print_string (Exp_cache.render r);
    Printf.printf "(machine-readable record written to %s)\n" out
  end;
  if not (Exp_report.all_pass r.Exp_cache.checks) then exit 1

let run_shard quick json jobs out () =
  let r = Exp_shard.run ~quick ~jobs () in
  let record = Exp_shard.render_json r in
  let oc = open_out out in
  output_string oc record;
  close_out oc;
  if json then print_string record
  else begin
    print_string (Exp_shard.render r);
    Printf.printf "(machine-readable record written to %s)\n" out
  end;
  if not (Exp_report.all_pass r.Exp_shard.checks) then exit 1

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shorten the Table 4 simulation (60s instead of 300s).")

let json_flag =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the versioned machine-readable record instead of the text rendering.")

let seed_opt =
  Arg.(
    value
    & opt (some int64) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Fault-plan seed (same seed, same storm).")

let jobs_opt =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run independent experiments on $(docv) OCaml domains. Output is joined in fixed \
           order, so it is byte-identical to a sequential run.")

let perf_jobs_opt =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domain count for the perf record's driver leg (default: the recommended domain \
           count).")

let out_opt =
  Arg.(
    value & opt string "BENCH_perf.json"
    & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the vpp-perf/2 record.")

let market_out_opt =
  Arg.(
    value & opt string "BENCH_market.json"
    & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the vpp-market/1 record.")

let tier_out_opt =
  Arg.(
    value & opt string "BENCH_tier.json"
    & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the vpp-tier/1 record.")

let cache_out_opt =
  Arg.(
    value & opt string "BENCH_cache.json"
    & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the vpp-cache/1 record.")

let shard_out_opt =
  Arg.(
    value & opt string "BENCH_shard.json"
    & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the vpp-shard/1 record.")

let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Record to validate.")

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let () =
  let cmds =
    [
      cmd "table1" "System primitive times (Table 1)" Term.(const run_table1 $ const ());
      cmd "table2" "Application elapsed times (Table 2)" Term.(const run_table2 $ const ());
      cmd "table3" "VM system activity and costs (Table 3)" Term.(const run_table3 $ const ());
      cmd "table4" "DBMS transaction response times (Table 4)"
        Term.(const run_table4 $ quick_flag $ const ());
      cmd "figures" "Figures 1 and 2 as live kernel-state dumps"
        Term.(const run_figures $ const ());
      cmd "ablate" "Ablations of the design choices (batching, delivery mode, crossover)"
        Term.(const run_ablations $ jobs_opt $ const ());
      cmd "stats" "Translation-substrate statistics (mapping hash, TLB) for the Table 2 runs"
        Term.(const run_stats $ const ());
      cmd "chaos" "Seeded fault-injection storms on the disk/manager paths (not a paper table)"
        Term.(const run_chaos $ seed_opt $ const ());
      cmd "profile"
        "Cost attribution for the Table 1 paths plus latency histograms (not a paper table)"
        Term.(const run_profile $ json_flag $ const ());
      cmd "perf"
        "Simulator throughput at 8 MB/512 MB/4 GB machine sizes, the 4 KB-vs-superpage \
         streaming legs and the parallel-driver timing (the vpp-perf/2 record; not a paper \
         table)"
        Term.(const run_perf $ quick_flag $ json_flag $ perf_jobs_opt $ out_opt $ const ());
      cmd "perf-validate" "Deprecated alias for $(b,validate)"
        Term.(const run_validate $ file_arg $ const ());
      cmd "market"
        "Multi-tenant memory market at production scale: admission control, lazy settlement \
         and per-class SLOs (the vpp-market/1 record; not a paper table)"
        Term.(const run_market $ quick_flag $ json_flag $ perf_jobs_opt $ market_out_opt $ const ());
      cmd "market-validate" "Deprecated alias for $(b,validate)"
        Term.(const run_validate $ file_arg $ const ());
      cmd "tier"
        "Single-tier vs tiered frame placement: a tier-oblivious pager against Mgr_tiered's \
         hot/cold migration on the same traces (the vpp-tier/1 record; not a paper table)"
        Term.(const run_tier $ quick_flag $ json_flag $ jobs_opt $ tier_out_opt $ const ());
      cmd "cache"
        "Frame placement vs a physically-indexed cache: the same trace under sequential, random \
         and page-colored placement (the vpp-cache/1 record; not a paper table)"
        Term.(const run_cache $ quick_flag $ json_flag $ jobs_opt $ cache_out_opt $ const ());
      cmd "shard"
        "Sharded DBMS throughput: the same transactions over 1/4/8 parallel shards with \
         two-phase commit on the cross-shard fraction (the vpp-shard/1 record; not a paper \
         table)"
        Term.(const run_shard $ quick_flag $ json_flag $ jobs_opt $ shard_out_opt $ const ());
      cmd "validate"
        "Validate any versioned record (vpp-perf/2, vpp-perf/1, vpp-market/1, vpp-profile/1, \
         vpp-tier/1, vpp-cache/1, vpp-shard/1), dispatching on its embedded schema tag"
        Term.(const run_validate $ file_arg $ const ());
      cmd "all" "Every table and figure" Term.(const run_all $ quick_flag $ jobs_opt $ const ());
    ]
  in
  let info =
    Cmd.info "vpp_repro" ~version:"1.0.0"
      ~doc:
        "Reproduction of 'Application-Controlled Physical Memory using External Page-Cache \
         Management' (Harty & Cheriton, ASPLOS 1992)"
  in
  exit
    (Cmd.eval (Cmd.group info ~default:Term.(const run_all $ quick_flag $ jobs_opt $ const ()) cmds))
