lib/hw/hw_phys_mem.mli: Hw_page_data
