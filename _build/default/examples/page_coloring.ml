(* Application-specific page coloring (paper §1, citing Bray et al.).

   A physically-indexed direct-mapped cache maps a datum to a set based on
   its physical address. A kernel that allocates frames arbitrarily can
   put two hot pages in the same cache color, and the application can
   neither see nor fix it. With external page-cache management the
   application requests frames by color from the SPCM so that its hot
   working set tiles the cache.

   We allocate a working set half the cache's size twice — once with
   color-blind worst-case allocation, once with the coloring manager —
   and sweep it repeatedly through the cache model.

   Run with: dune exec examples/page_coloring.exe *)

module K = Epcm_kernel
module Seg = Epcm_segment

let page_bytes = 4096
let cache_bytes = 64 * 1024 (* direct-mapped, physically indexed *)
let working_set_pages = 8 (* half the cache *)
let sweeps = 100

let sweep_working_set cache kernel seg =
  for page = 0 to working_set_pages - 1 do
    let attrs = K.get_page_attributes kernel ~seg ~page ~count:1 in
    match attrs.(0).K.pa_phys_addr with
    | Some addr -> Hw_cache.touch_page cache ~phys_addr:addr ~page_bytes
    | None -> assert false
  done

let build () =
  let machine = Hw_machine.create ~memory_bytes:(4 * 1024 * 1024) ~n_colors:16 () in
  let kernel = K.create machine in
  (machine, kernel)

(* Worst-case conventional allocation: all frames happen to share one
   color (e.g. a buddy allocator returning same-stride frames). *)
let color_blind () =
  let machine, kernel = build () in
  let cache = Hw_cache.create ~size_bytes:cache_bytes () in
  let n_colors = Hw_cache.n_colors cache ~page_bytes in
  let seg = K.create_segment kernel ~name:"working-set" ~pages:working_set_pages () in
  let init = K.initial_segment kernel in
  let init_seg = K.segment kernel init in
  (* Pick frames whose physical addresses collide in the cache. *)
  let placed = ref 0 in
  let slot = ref 0 in
  while !placed < working_set_pages && !slot < Seg.length init_seg do
    (match (Seg.page init_seg !slot).Seg.frame with
    | Some f
      when Hw_cache.color_of cache
             ~phys_addr:(Hw_phys_mem.frame machine.Hw_machine.mem f).Hw_phys_mem.addr
             ~page_bytes
           = 0 ->
        K.migrate_pages kernel ~src:init ~dst:seg ~src_page:!slot ~dst_page:!placed ~count:1 ();
        incr placed
    | Some _ | None -> ());
    incr slot
  done;
  assert (!placed = working_set_pages);
  for _ = 1 to sweeps do
    sweep_working_set cache kernel seg
  done;
  (cache, n_colors)

(* Application-controlled coloring through the coloring manager + SPCM. *)
let colored () =
  let _machine, kernel = build () in
  let cache = Hw_cache.create ~size_bytes:cache_bytes () in
  let n_colors = Hw_cache.n_colors cache ~page_bytes in
  let spcm = Spcm.create kernel () in
  let client = Spcm.register_client ~income:1_000_000.0 spcm ~name:"colored-app" () in
  let source ~color ~dst ~dst_page ~count =
    let constraint_ =
      match color with None -> Spcm.Unconstrained | Some c -> Spcm.Color c
    in
    match Spcm.request spcm ~client ~dst ~dst_page ~count ~constraint_ () with
    | Spcm.Granted n -> n
    | Spcm.Deferred | Spcm.Refused -> 0
  in
  let mgr = Mgr_coloring.create kernel ~n_colors ~source ~pool_capacity:64 () in
  let seg = Mgr_coloring.create_segment mgr ~name:"working-set" ~pages:working_set_pages in
  for page = 0 to working_set_pages - 1 do
    K.touch kernel ~space:seg ~page ~access:Epcm_manager.Write
  done;
  let good, total = Mgr_coloring.audit mgr ~seg in
  for _ = 1 to sweeps do
    sweep_working_set cache kernel seg
  done;
  (cache, good, total, Mgr_coloring.color_misses mgr)

let () =
  let blind_cache, n_colors = color_blind () in
  let colored_cache, good, total, misses = colored () in
  Printf.printf
    "Sweeping a %d-page working set %d times through a %dKB direct-mapped physical cache (%d page colors):\n\n"
    working_set_pages sweeps (cache_bytes / 1024) n_colors;
  Printf.printf "  color-blind kernel allocation : %7d cache misses (miss rate %.1f%%)\n"
    (Hw_cache.misses blind_cache)
    (100.0 *. Hw_cache.miss_rate blind_cache);
  Printf.printf "  application page coloring     : %7d cache misses (miss rate %.1f%%)\n"
    (Hw_cache.misses colored_cache)
    (100.0 *. Hw_cache.miss_rate colored_cache);
  Printf.printf "  colored correctly: %d/%d pages (%d color misses at the SPCM)\n" good total
    misses;
  Printf.printf "  conflict misses eliminated: %.0fx fewer\n"
    (float_of_int (Hw_cache.misses blind_cache) /. float_of_int (Hw_cache.misses colored_cache))
