type id = int

type fault_kind = Missing | Protection | Cow_write
type access = Read | Write

type fault = {
  f_seg : Epcm_segment.id;
  f_page : int;
  f_access : access;
  f_kind : fault_kind;
  f_space : Epcm_segment.id;
}

type mode = [ `In_process | `Separate_process ]

type t = {
  mid : id;
  mname : string;
  mmode : mode;
  on_fault : fault -> unit;
  on_close : Epcm_segment.id -> unit;
  on_pressure : pages:int -> int;
}

let access_to_string = function Read -> "read" | Write -> "write"

let kind_to_string = function
  | Missing -> "missing"
  | Protection -> "protection"
  | Cow_write -> "cow-write"

let pp_fault ppf f =
  Format.fprintf ppf "%s %s fault at seg %d page %d (via seg %d)" (kind_to_string f.f_kind)
    (access_to_string f.f_access) f.f_seg f.f_page f.f_space
