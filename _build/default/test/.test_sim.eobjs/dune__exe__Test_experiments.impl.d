test/test_experiments.ml: Alcotest Exp_ablations Exp_figures Exp_report Exp_substrate Exp_table1 Exp_table2 Exp_table3 Exp_table4 Float List String
