(** Page-coloring segment manager.

    On a physically-indexed cache, the cache set a virtual page occupies
    is decided by the physical frame the kernel picked. A conventional
    kernel picks arbitrarily; this manager implements the paper's
    application-specific page coloring: virtual page [p] of a managed
    segment gets a frame of color [p mod n_colors], using the SPCM's
    color-constrained allocation ([GetPageAttributes] exposes physical
    addresses, so the manager can verify what it got).

    Unlike {!Mgr_free_pages}, the pool here is slot-addressed, not
    compact: frames of different colors coexist and are picked by
    color. *)

type t

type colored_source =
  color:int option -> dst:Epcm_segment.id -> dst_page:int -> count:int -> int
(** Like {!Mgr_generic.source} with an optional color constraint. *)

val create :
  Epcm_kernel.t -> n_colors:int -> source:colored_source -> pool_capacity:int -> unit -> t

val manager_id : t -> Epcm_manager.id

val create_segment : t -> name:string -> pages:int -> Epcm_segment.id
(** Anonymous segment whose faults are served color-matched. *)

val color_of_frame : t -> frame:int -> int

val audit : t -> seg:Epcm_segment.id -> int * int
(** (correctly colored resident pages, total resident pages). With a
    cooperative SPCM the first equals the second. *)

val color_misses : t -> int
(** Faults the manager could not serve with the preferred color (SPCM had
    no frame of it) and served with an arbitrary frame instead. *)
