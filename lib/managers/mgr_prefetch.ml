module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags
module Engine = Sim_engine
module Gate = Sim_sync.Gate
module Semaphore = Sim_sync.Semaphore

type seg_info = { file_id : int }

type t = {
  kern : K.t;
  mutable mid : Mgr.id;
  pool : Mgr_free_pages.t;
  backing : Mgr_backing.t;
  source : Mgr_generic.source;
  (* The pool is touched from the faulting process and from prefetch
     processes; its multi-step operations must not interleave. *)
  pool_lock : Semaphore.t;
  segs : (Seg.id, seg_info) Hashtbl.t;
  pending : (Seg.id * int, Gate.t) Hashtbl.t;
  counters : Sim_stats.Counters.t option;
  mutable prefetches : int;
  mutable demand_fills : int;
  mutable absorbed : int;
  mutable discards : int;
  mutable prefetch_failures : int;
  mutable degraded : int;
}

let bump t name = Option.iter (fun c -> Sim_stats.Counters.incr c ("prefetch." ^ name)) t.counters

let manager_id t = t.mid

let info t seg =
  match Hashtbl.find_opt t.segs seg with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Mgr_prefetch: unmanaged segment %d" seg)

let page_absent t seg page =
  let s = K.segment t.kern seg in
  Seg.in_range s page && (Seg.page s page).Seg.frame = None

let with_pool t f =
  Semaphore.acquire t.pool_lock;
  Fun.protect ~finally:(fun () -> Semaphore.release t.pool_lock) f

(* Fill one page: read the block (disk latency), then take a pooled frame
   carrying the data into the slot. The pool lock covers only the pool
   manipulation, not the disk wait. *)
let fill_page t seg page =
  let { file_id } = info t seg in
  let data = Mgr_backing.read_block t.backing ~file:file_id ~block:page in
  with_pool t (fun () ->
      if page_absent t seg page then begin
        if Mgr_free_pages.available t.pool = 0 then begin
          let got =
            t.source ~dst:(Mgr_free_pages.segment t.pool)
              ~dst_page:(Option.value (Mgr_free_pages.grant_slot t.pool) ~default:0)
              ~count:(min 32 (Mgr_free_pages.room t.pool))
          in
          Mgr_free_pages.note_granted t.pool got;
          if got = 0 then
            raise (Mgr_generic.Out_of_frames "Mgr_prefetch: no frames for fill")
        end;
        Mgr_free_pages.set_next_data t.pool data;
        let moved =
          Mgr_free_pages.take_to t.pool ~dst:seg ~dst_page:page ~count:1
            ~clear_flags:Flags.dirty ()
        in
        assert (moved = 1)
      end)

let on_fault t (fault : Mgr.fault) =
  let machine = K.machine t.kern in
  Hw_machine.charge ~label:"mgr/fault_logic" machine machine.Hw_machine.cost.Hw_cost.manager_fault_logic;
  match fault.Mgr.f_kind with
  | Mgr.Missing -> (
      let key = (fault.Mgr.f_seg, fault.Mgr.f_page) in
      match Hashtbl.find_opt t.pending key with
      | Some gate ->
          (* Read-ahead already in flight: just wait for it. *)
          t.absorbed <- t.absorbed + 1;
          Gate.wait gate;
          (* The prefetch may have died on an injected disk error; the gate
             opens either way. Returning with the page still absent would
             leave the fault unresolved, so degrade to a demand fill. *)
          if page_absent t fault.Mgr.f_seg fault.Mgr.f_page then begin
            t.degraded <- t.degraded + 1;
            bump t "degraded_to_demand";
            fill_page t fault.Mgr.f_seg fault.Mgr.f_page
          end
      | None ->
          t.demand_fills <- t.demand_fills + 1;
          fill_page t fault.Mgr.f_seg fault.Mgr.f_page)
  | Mgr.Protection | Mgr.Cow_write ->
      K.modify_page_flags t.kern ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
        ~clear_flags:(Flags.of_list [ Flags.no_access; Flags.read_only ])
        ()

let create kern ?disk ?retry ?counters ~source ~pool_capacity () =
  let disk = Option.value disk ~default:(K.machine kern).Hw_machine.disk in
  let backing =
    Mgr_backing.disk ?retry ?counters disk ~page_bytes:(Hw_machine.page_size (K.machine kern))
  in
  let t =
    {
      kern;
      mid = -1;
      pool = Mgr_free_pages.create kern ~name:"prefetch.free-pages" ~capacity:pool_capacity;
      backing;
      source;
      pool_lock = Semaphore.create 1;
      segs = Hashtbl.create 8;
      pending = Hashtbl.create 64;
      counters;
      prefetches = 0;
      demand_fills = 0;
      absorbed = 0;
      discards = 0;
      prefetch_failures = 0;
      degraded = 0;
    }
  in
  t.mid <- K.register_manager kern ~name:"prefetch-manager" ~mode:`In_process
      ~on_fault:(fun f -> on_fault t f) ();
  t

let create_file_segment t ~name ~file_id ~pages =
  let seg = K.create_segment t.kern ~name ~pages () in
  Hashtbl.replace t.segs seg { file_id };
  K.set_segment_manager t.kern seg t.mid;
  seg

let prefetch t ~seg ~page ~count =
  for p = page to page + count - 1 do
    let key = (seg, p) in
    if page_absent t seg p && not (Hashtbl.mem t.pending key) then begin
      let gate = Gate.create () in
      Hashtbl.replace t.pending key gate;
      t.prefetches <- t.prefetches + 1;
      Engine.fork ~name:"prefetch" (fun () ->
          Fun.protect
            ~finally:(fun () ->
              Hashtbl.remove t.pending key;
              Gate.open_ gate)
            (fun () ->
              (* A forked process has no caller to unwind to — an escaped
                 exception would abort the whole simulation. Absorb the
                 failure; the page stays absent and any waiter degrades to
                 a demand fill. *)
              try fill_page t seg p
              with Mgr_backing.Backing_failed _ | Mgr_generic.Out_of_frames _ ->
                t.prefetch_failures <- t.prefetch_failures + 1;
                bump t "prefetch_fill_failed"))
    end
  done

let discard t ~seg ~page ~count =
  with_pool t (fun () ->
      let s = K.segment t.kern seg in
      for p = page to page + count - 1 do
        if Seg.in_range s p && (Seg.page s p).Seg.frame <> None then begin
          (* Dead data: reclaim the frame with no writeback, even if
             dirty. *)
          if Mgr_free_pages.room t.pool = 0 then
            ignore (Mgr_free_pages.release_to_initial t.pool ~count:32);
          Mgr_free_pages.put_from t.pool ~src:seg ~src_page:p;
          t.discards <- t.discards + 1
        end
      done)

let resident t ~seg = Seg.resident_pages (K.segment t.kern seg)
let prefetches_started t = t.prefetches
let demand_fills t = t.demand_fills
let absorbed_faults t = t.absorbed
let discards t = t.discards
let prefetch_failures t = t.prefetch_failures
let degraded_to_demand t = t.degraded
