lib/hw/hw_cost.ml:
