lib/workloads/wl_run.ml: Epcm_kernel Epcm_manager Epcm_segment Hashtbl Hw_cost Hw_machine Hw_page_data Hw_page_table Hw_tlb List Mgr_default Mgr_generic Option Sim_engine Uvm Wl_trace
