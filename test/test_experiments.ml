(* End-to-end tests: every table and figure regenerates with its shape
   checks passing — the headline claim of the reproduction. *)

let check_bool = Alcotest.(check bool)

let render_failures checks =
  checks
  |> List.filter (fun c -> not c.Exp_report.pass)
  |> List.map (fun c -> c.Exp_report.what ^ " — " ^ c.Exp_report.detail)
  |> String.concat "; "

let assert_all_pass checks =
  if not (Exp_report.all_pass checks) then Alcotest.fail (render_failures checks)

let test_table1 () =
  let r = Exp_table1.run () in
  assert_all_pass r.Exp_table1.checks;
  (* The headline numbers are exact. *)
  List.iter
    (fun (row : Exp_table1.row) ->
      match (row.Exp_table1.vpp_us, row.Exp_table1.paper_vpp) with
      | Some measured, Some paper ->
          check_bool (row.Exp_table1.label ^ " matches paper") true
            (Float.abs (measured -. paper) < 0.5)
      | _ -> ())
    r.Exp_table1.rows

let test_table2 () = assert_all_pass (Exp_table2.run ()).Exp_table2.checks
let test_table3 () = assert_all_pass (Exp_table3.run ()).Exp_table3.checks

let test_table4_quick () =
  let r = Exp_table4.run ~quick:true () in
  assert_all_pass r.Exp_table4.checks

let test_figures () =
  let r = Exp_figures.run () in
  assert_all_pass r.Exp_figures.checks

let test_substrate_stats () =
  let r = Exp_substrate.run () in
  assert_all_pass r.Exp_substrate.checks;
  (* The rescans exercise the translation path: the mapping hash must have
     served warm touches. *)
  List.iter
    (fun (row : Exp_substrate.row) ->
      check_bool (row.Exp_substrate.program ^ ": hash exercised") true
        (row.Exp_substrate.pt_hits > 0))
    r.Exp_substrate.rows

let test_ablations_hold () =
  List.iter
    (fun a ->
      check_bool (a.Exp_ablations.a_name ^ " finding holds") true a.Exp_ablations.holds;
      check_bool (a.Exp_ablations.a_name ^ " has rows") true
        (List.length a.Exp_ablations.rows >= 2))
    (Exp_ablations.run_all ())

(* ------------------------------------------------------------------ *)
(* Exp_par: the domain-parallel driver                                *)
(* ------------------------------------------------------------------ *)

(* In-order join is the driver's whole contract: however completion
   interleaves across domains, results come back in input order, so
   [concat] is byte-identical to a sequential String.concat. *)
let test_par_in_order_join () =
  let tasks n = List.init n (fun i () -> Printf.sprintf "task-%02d" i) in
  List.iter
    (fun jobs ->
      let n = 13 in
      Alcotest.(check (list string))
        (Printf.sprintf "map ~jobs:%d preserves input order" jobs)
        (List.map (fun f -> f ()) (tasks n))
        (Exp_par.map ~jobs (tasks n));
      Alcotest.(check string)
        (Printf.sprintf "concat ~jobs:%d = sequential concat" jobs)
        (String.concat "|" (List.map (fun f -> f ()) (tasks n)))
        (Exp_par.concat ~jobs ~sep:"|" (tasks n)))
    [ 1; 2; 4; 32 ];
  Alcotest.(check (list string)) "empty task list" [] (Exp_par.map ~jobs:4 [])

(* A task exception must surface after the join, not vanish with its
   domain — a silently dropped ablation would look like success. *)
let test_par_reraises () =
  List.iter
    (fun jobs ->
      match
        Exp_par.map ~jobs
          [ (fun () -> "ok"); (fun () -> failwith "task exploded"); (fun () -> "also ok") ]
      with
      | _ -> Alcotest.failf "jobs=%d: expected the task's exception" jobs
      | exception Failure msg ->
          Alcotest.(check string) "original exception" "task exploded" msg)
    [ 1; 3 ]

(* ------------------------------------------------------------------ *)
(* Exp_scale: the vpp-perf/1 record                                   *)
(* ------------------------------------------------------------------ *)

(* One quick record shared by the validation cases below: the run itself
   (two machine sizes plus the timed driver legs) costs a few seconds. *)
let quick_record = lazy (Exp_scale.run ~quick:true ~jobs:2 ())

let test_perf_record_quick () =
  let r = Lazy.force quick_record in
  assert_all_pass r.Exp_scale.checks;
  check_bool "parallel driver output identical" true r.Exp_scale.driver.Exp_scale.d_identical;
  (* The record validates both as the in-memory tree and after a print →
     parse round-trip, which is what perf-validate consumes. *)
  (match Exp_scale.validate_json (Exp_scale.to_json r) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("in-memory record invalid: " ^ e));
  match Sim_json.parse (Exp_scale.render_json r) with
  | Error e -> Alcotest.fail ("rendered record does not parse: " ^ e)
  | Ok json -> (
      match Exp_scale.validate_json json with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("round-tripped record invalid: " ^ e))

(* The validator must reject, not mis-accept, the failure modes a perf
   regression would actually produce. *)
let test_perf_record_validator_rejects () =
  let reject what json =
    match Exp_scale.validate_json json with
    | Ok () -> Alcotest.fail ("validator accepted " ^ what)
    | Error _ -> ()
  in
  let parse s = match Sim_json.parse s with Ok j -> j | Error e -> Alcotest.fail e in
  reject "wrong schema" (parse {|{"schema": "vpp-perf/0"}|});
  reject "missing scales" (parse {|{"schema": "vpp-perf/1", "mode": "full"}|});
  let r = Lazy.force quick_record in
  let drop_first_scale = function
    | Sim_json.Obj fields ->
        Sim_json.Obj
          (List.map
             (function
               | "scales", Sim_json.List (_ :: rest) -> ("scales", Sim_json.List rest)
               | kv -> kv)
             fields)
    | j -> j
  in
  reject "a single remaining scale" (drop_first_scale (Exp_scale.to_json r))

(* ------------------------------------------------------------------ *)
(* Exp_validate: the unified schema dispatcher                         *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_validate_known_schemas () =
  List.iter
    (fun tag ->
      check_bool (tag ^ " is a known schema") true (List.mem tag Exp_validate.known_schemas))
    [
      Exp_scale.schema_version;
      Exp_scale.schema_version_v1;
      Exp_market.schema_version;
      Exp_profile.schema_version;
      Exp_tier.schema_version;
      Exp_cache.schema_version;
      Exp_shard.schema_version;
    ];
  Alcotest.(check int) "exactly the seven known schemas" 7
    (List.length Exp_validate.known_schemas)

(* No command emits vpp-perf/1 anymore; the legacy validator is kept for
   records written by older builds, so the coverage here is a
   hand-crafted minimal record of that vintage. *)
let legacy_perf_v1 =
  {|{"schema": "vpp-perf/1", "mode": "quick",
     "scales": [
       {"name": "8mb", "conserved": true, "events": 70000, "faults": 1344, "wall_s": 0.1},
       {"name": "512mb", "conserved": true, "events": 4000000, "faults": 86016, "wall_s": 1.5}],
     "driver": {"parallel_identical": true, "jobs": 2},
     "checks": [{"what": "per-size conservation", "pass": true}]}|}

(* Every schema the dispatcher knows, dispatched both from the in-memory
   tree and through the string (parse) entry point. The run-based records
   come from the quick experiment configurations; the legacy vpp-perf/1
   from the hand-crafted record above. *)
let test_validate_dispatches_all_schemas () =
  let records =
    [
      (Exp_scale.schema_version, Exp_scale.render_json (Lazy.force quick_record));
      (Exp_scale.schema_version_v1, legacy_perf_v1);
      (Exp_market.schema_version, Exp_market.render_json (Exp_market.run ~quick:true ()));
      (Exp_profile.schema_version, Exp_profile.render_json (Exp_profile.run ()));
      (Exp_tier.schema_version, Exp_tier.render_json (Exp_tier.run ~quick:true ()));
      (Exp_cache.schema_version, Exp_cache.render_json (Exp_cache.run ~quick:true ()));
      (Exp_shard.schema_version, Exp_shard.render_json (Exp_shard.run ~quick:true ~jobs:2 ()));
    ]
  in
  List.iter
    (fun (expect, record) ->
      (match Exp_validate.validate_string record with
      | Ok tag -> Alcotest.(check string) (expect ^ ": dispatched to its validator") expect tag
      | Error e -> Alcotest.fail (expect ^ ": " ^ e));
      match Sim_json.parse record with
      | Error e -> Alcotest.fail (expect ^ ": record does not parse: " ^ e)
      | Ok json -> (
          match Exp_validate.validate json with
          | Ok tag -> Alcotest.(check string) (expect ^ ": tree dispatch") expect tag
          | Error e -> Alcotest.fail (expect ^ ": " ^ e)))
    records

let test_validate_rejects () =
  let reject what ~expect input =
    match Exp_validate.validate_string input with
    | Ok tag -> Alcotest.fail ("dispatcher accepted " ^ what ^ " as " ^ tag)
    | Error e ->
        check_bool
          (Printf.sprintf "%s: error mentions %S (got %S)" what expect e)
          true (contains ~needle:expect e)
  in
  reject "JSON syntax garbage" ~expect:"JSON parse error" "{not json";
  reject "a record with no schema tag" ~expect:"no \"schema\" tag" {|{"mode": "quick"}|};
  (* Both error paths must name the known schemas so the caller can see
     what the build actually supports. *)
  reject "a record with no schema tag" ~expect:Exp_cache.schema_version {|{"mode": "quick"}|};
  reject "an unknown schema" ~expect:"unknown schema" {|{"schema": "vpp-frobnicate/9"}|};
  reject "an unknown schema" ~expect:Exp_tier.schema_version {|{"schema": "vpp-frobnicate/9"}|};
  (* Known schema, malformed body: the dispatcher reaches the schema's own
     validator and prefixes its complaint with the tag. *)
  reject "an empty vpp-cache/1 record" ~expect:"invalid vpp-cache/1 record"
    {|{"schema": "vpp-cache/1"}|};
  reject "an empty vpp-tier/1 record" ~expect:"invalid vpp-tier/1 record"
    {|{"schema": "vpp-tier/1"}|};
  reject "an empty vpp-shard/1 record" ~expect:"invalid vpp-shard/1 record"
    {|{"schema": "vpp-shard/1"}|};
  reject "a vpp-perf/1 record with one scale" ~expect:"at least two scales"
    {|{"schema": "vpp-perf/1", "mode": "quick",
       "scales": [{"name": "8mb", "conserved": true, "events": 1, "faults": 1, "wall_s": 0}]}|};
  reject "a vpp-perf/1 record that leaked frames" ~expect:"frame conservation failed"
    {|{"schema": "vpp-perf/1", "mode": "quick",
       "scales": [
         {"name": "8mb", "conserved": false, "events": 1, "faults": 1, "wall_s": 0},
         {"name": "512mb", "conserved": true, "events": 1, "faults": 1, "wall_s": 0}]}|};
  (* A failing vpp-cache/1 gate: colored not better than random. *)
  let r = Exp_cache.run ~quick:true () in
  let doctored =
    match Exp_cache.to_json r with
    | Sim_json.Obj fields ->
        Sim_json.Obj
          (List.map
             (function
               | "legs", Sim_json.List legs ->
                   ( "legs",
                     Sim_json.List
                       (List.map
                          (function
                            | Sim_json.Obj leg ->
                                Sim_json.Obj
                                  (List.map
                                     (function
                                       | "miss_rate", _ -> ("miss_rate", Sim_json.Num 0.5)
                                       | kv -> kv)
                                     leg)
                            | j -> j)
                          legs) )
               | kv -> kv)
             fields)
    | j -> j
  in
  (match Exp_validate.validate doctored with
  | Ok tag -> Alcotest.fail ("dispatcher accepted a doctored cache record as " ^ tag)
  | Error e ->
      check_bool
        (Printf.sprintf "doctored cache record rejected for the right reason (got %S)" e)
        true
        (contains ~needle:"did not beat random" e));
  (* A failing vpp-shard/1 gate: the single-shard baseline claiming 2PC
     traffic — the zero-delta discipline broken in the record itself. *)
  let shard_record = Exp_shard.run ~quick:true () in
  let doctored_shard =
    match Exp_shard.to_json shard_record with
    | Sim_json.Obj fields ->
        Sim_json.Obj
          (List.map
             (function
               | "legs", Sim_json.List legs ->
                   ( "legs",
                     Sim_json.List
                       (List.map
                          (function
                            | Sim_json.Obj leg
                              when List.assoc_opt "shards" leg = Some (Sim_json.Num 1.0) ->
                                Sim_json.Obj
                                  (List.map
                                     (function
                                       | "msgs", _ -> ("msgs", Sim_json.Num 8.0)
                                       | kv -> kv)
                                     leg)
                            | j -> j)
                          legs) )
               | kv -> kv)
             fields)
    | j -> j
  in
  match Exp_validate.validate doctored_shard with
  | Ok tag -> Alcotest.fail ("dispatcher accepted a doctored shard record as " ^ tag)
  | Error e ->
      check_bool
        (Printf.sprintf "doctored shard record rejected for the right reason (got %S)" e)
        true
        (contains ~needle:"zero-delta broken" e)

let test_renders_nonempty () =
  check_bool "table1 renders" true (String.length (Exp_table1.render (Exp_table1.run ())) > 100);
  check_bool "figures render" true
    (String.length (Exp_figures.render (Exp_figures.run ())) > 100)

let () =
  Alcotest.run "experiments"
    [
      ( "tables",
        [
          Alcotest.test_case "table 1 exact" `Quick test_table1;
          Alcotest.test_case "table 2 shape" `Slow test_table2;
          Alcotest.test_case "table 3 exact" `Slow test_table3;
          Alcotest.test_case "table 4 shape (quick)" `Slow test_table4_quick;
          Alcotest.test_case "figures" `Quick test_figures;
          Alcotest.test_case "substrate stats" `Slow test_substrate_stats;
          Alcotest.test_case "ablations hold" `Slow test_ablations_hold;
          Alcotest.test_case "renders" `Quick test_renders_nonempty;
        ] );
      ( "parallel driver",
        [
          Alcotest.test_case "in-order join" `Quick test_par_in_order_join;
          Alcotest.test_case "re-raises task exceptions" `Quick test_par_reraises;
        ] );
      ( "perf record",
        [
          Alcotest.test_case "quick record validates" `Slow test_perf_record_quick;
          Alcotest.test_case "validator rejects bad records" `Slow
            test_perf_record_validator_rejects;
        ] );
      ( "validate dispatcher",
        [
          Alcotest.test_case "knows every schema" `Quick test_validate_known_schemas;
          Alcotest.test_case "dispatches every schema" `Slow test_validate_dispatches_all_schemas;
          Alcotest.test_case "rejects malformed and unknown records" `Quick test_validate_rejects;
        ] );
    ]
