(* The memory market (paper §2.4): batch programs save drams, buy memory,
   run, swap out, and quiesce.

   Three batch jobs with different incomes compete for a machine whose
   memory holds roughly one working set at a time. Each job repeatedly
   runs the paper's batch cycle:

     save drams  ->  request frames from the SPCM  ->  fault the working
     set in through its own segment manager  ->  compute for a slice  ->
     swap out (dirty pages to its swap area, frames back to the system,
     the 2.2 suspension protocol)  ->  quiesce.

   Higher income buys a larger share of the machine over time — the
   paper's administrative-policy claim.

   Run with: dune exec examples/memory_market.exe *)

module K = Epcm_kernel
module Engine = Sim_engine
module G = Mgr_generic

let job_pages = 192 (* working set of each job *)
let slice_s = 2.0 (* time slice a job buys at once *)
let horizon_s = 120.0

type job = {
  name : string;
  income : float;
  mutable runs : int;
  mutable compute_s : float;
  mutable refused : int;
  mutable deferred : int;
  mutable swapped_frames : int;
}

let () =
  (* Memory fits one and a half working sets: jobs must take turns. *)
  let machine = Hw_machine.create ~memory_bytes:(300 * 4096) () in
  let kernel = K.create machine in
  let market =
    {
      Spcm_market.default_config with
      charge_rate = 40.0 (* drams per MB-second: memory is expensive *);
      free_when_idle = false;
      savings_tax_rate = 0.005;
      savings_tax_threshold = 50.0;
    }
  in
  let spcm = Spcm.create kernel ~market ~affordability_horizon:slice_s () in
  let jobs =
    [
      { name = "job-hi (income 24)"; income = 24.0; runs = 0; compute_s = 0.0; refused = 0;
        deferred = 0; swapped_frames = 0 };
      { name = "job-mid (income 12)"; income = 12.0; runs = 0; compute_s = 0.0; refused = 0;
        deferred = 0; swapped_frames = 0 };
      { name = "job-lo (income 6)"; income = 6.0; runs = 0; compute_s = 0.0; refused = 0;
        deferred = 0; swapped_frames = 0 };
    ]
  in
  List.iter
    (fun job ->
      Engine.spawn machine.Hw_machine.engine ~name:job.name (fun () ->
          let client = Spcm.register_client ~income:job.income spcm ~name:job.name () in
          (* Each job brings its own application segment manager; its
             frames come from the SPCM under the job's account. *)
          let mgr =
            G.create kernel ~name:(job.name ^ ".mgr") ~mode:`In_process
              ~backing:(Mgr_backing.memory ())
              ~source:(Spcm.source_for spcm client)
              ~pool_capacity:(job_pages + 32) ()
          in
          let seg =
            G.create_segment mgr ~name:(job.name ^ ".data") ~pages:job_pages ~kind:G.Anon ()
          in
          let rec loop () =
            if Engine.time () < horizon_s *. 1_000_000.0 then begin
              (* Save until the slice is affordable, then buy the working
                 set in one request. *)
              match
                Spcm.request spcm ~client ~dst:(Mgr_free_pages.segment (G.pool mgr))
                  ~dst_page:(Option.value (Mgr_free_pages.grant_slot (G.pool mgr)) ~default:0)
                  ~count:job_pages ()
              with
              | Spcm.Granted n when n = job_pages ->
                  Mgr_free_pages.note_granted (G.pool mgr) n;
                  job.runs <- job.runs + 1;
                  (* Fault the working set in (minimal faults from the
                     pool, or swap-ins after the first cycle). *)
                  for p = 0 to job_pages - 1 do
                    K.touch kernel ~space:seg ~page:p ~access:Epcm_manager.Write
                  done;
                  Engine.delay (slice_s *. 1_000_000.0);
                  job.compute_s <- job.compute_s +. slice_s;
                  (* Time slice over: the 2.2 swap protocol pages the job
                     out and returns the frames. *)
                  let released = G.swap_out mgr in
                  job.swapped_frames <- job.swapped_frames + released;
                  Spcm.note_returned spcm ~client ~count:released;
                  Engine.delay 200_000.0;
                  loop ()
              | Spcm.Granted n ->
                  (* Partial grant: not enough for the working set. *)
                  Mgr_free_pages.note_granted (G.pool mgr) n;
                  job.deferred <- job.deferred + 1;
                  let released = G.swap_out mgr in
                  Spcm.note_returned spcm ~client ~count:released;
                  Engine.delay 500_000.0;
                  loop ()
              | Spcm.Deferred ->
                  job.deferred <- job.deferred + 1;
                  Engine.delay 500_000.0;
                  loop ()
              | Spcm.Refused ->
                  (* Cannot afford it yet: keep saving. *)
                  job.refused <- job.refused + 1;
                  Engine.delay 1_000_000.0;
                  loop ()
            end
          in
          loop ()))
    jobs;
  Engine.run ~until:(horizon_s *. 1_000_000.0) machine.Hw_machine.engine;
  Spcm.settle spcm;

  Printf.printf
    "Memory market after %.0f simulated seconds (one %d-page working set at a time):\n\n"
    horizon_s job_pages;
  Printf.printf "%-22s %6s %10s %9s %9s %9s %9s\n" "job" "runs" "compute(s)" "refused"
    "deferred" "swapped" "balance";
  List.iteri
    (fun i job ->
      let account = Spcm.account_of spcm (i + 1) in
      Printf.printf "%-22s %6d %10.1f %9d %9d %9d %9.1f\n" job.name job.runs job.compute_s
        job.refused job.deferred job.swapped_frames account.Spcm_market.balance)
    jobs;
  let hi = List.nth jobs 0 and lo = List.nth jobs 2 in
  Printf.printf
    "\nMachine share follows income (capped by contention): hi/lo compute ratio = %.1f with income ratio %.1f\n"
    (hi.compute_s /. lo.compute_s) (hi.income /. lo.income)
