(* Tiered-placement record: single-tier vs tiered machines on the same
   deterministic traces (`vpp_repro tier`, the vpp-tier/1 record).

   Each workload runs three legs:

   - [flat]    — one zero-surcharge DRAM tier, a naive demand pager.
                 The baseline: what the trace costs with no tiering.
   - [static]  — a fast + slow tier machine, the same naive pager.
                 Placement is fault-order accident: frames come out of
                 the initial segment in address order, so late-faulted
                 (hot) pages land on slow frames and stay there. The
                 delta against [flat] is pure tier surcharge — the cost
                 of tiered hardware under a tier-oblivious manager.
   - [managed] — the same tiered machine under Mgr_tiered: faults land
                 on fast frames, the clock demotes cold pages down the
                 hierarchy, protection-fault sampling promotes hot ones
                 back. The record's headline check is
                 managed.sim_us < static.sim_us: application-controlled
                 placement beats oblivious placement on the same
                 hardware (the paper's §2.1 thesis, ported to tiers).

   Everything is simulated time; no wall-clock, no randomness — reruns
   are bit-identical, which the embedded checks rely on. *)

module J = Sim_json
module K = Epcm_kernel
module Seg = Epcm_segment
module Mgr = Epcm_manager
module Flags = Epcm_flags
module T = Mgr_tiered
module Engine = Sim_engine

let schema_version = "vpp-tier/1"
let page_size = 4096

type leg = {
  g_mode : string;  (* "flat" | "static" | "managed" *)
  g_frames : int;
  g_touches : int;
  g_faults : int;
  g_migrate_calls : int;
  g_migrated_pages : int;
  g_events : int;
  g_sim_us : float;
  g_resident_by_tier : int list;
  g_promotions : int;
  g_demotions_slow : int;
  g_demotions_compressed : int;
  g_refetches : int;
  g_conserved : bool;
}

type run_row = {
  w_name : string;
  w_fast_frames : int;
  w_slow_frames : int;
  w_pages : int;
  w_flat : leg;
  w_static : leg;
  w_managed : leg;
}

type result = { mode : string; runs : run_row list; checks : Exp_report.check list }

(* A workload is a machine shape plus a deterministic touch trace over
   one segment. *)
type workload = {
  wk_name : string;
  wk_fast_frames : int;
  wk_slow_frames : int;
  wk_pages : int;
  wk_expect_compressed : bool;
  wk_trace : K.t -> Seg.id -> unit;
}

(* ------------------------------------------------------------------ *)
(* The two traces                                                      *)
(* ------------------------------------------------------------------ *)

(* Hot/cold working set in the Wl_scale style. Three phases:

   1. fault everything in, cold region first — under fault-order
      placement the late-faulted hot region lands on slow frames;
   2. one full re-pass — in the managed leg this is the phase change
      that promotes pages the phase-1 demotion cascade pushed down;
   3. hammer the hot region. Static placement pays the slow-tier access
      premium on every one of these touches; managed placement pays a
      bounded number of promotions and then runs at fast-DRAM speed. *)
let scale_trace ~cold ~hot ~rounds kernel seg =
  for page = 0 to cold + hot - 1 do
    K.touch kernel ~space:seg ~page ~access:Mgr.Write
  done;
  for page = 0 to cold + hot - 1 do
    K.touch kernel ~space:seg ~page ~access:Mgr.Read
  done;
  for _ = 1 to rounds do
    for page = cold to cold + hot - 1 do
      K.touch kernel ~space:seg ~page ~access:Mgr.Read
    done
  done

let scale_workload ~rounds =
  {
    wk_name = "scale";
    wk_fast_frames = 256;
    wk_slow_frames = 768;
    wk_pages = 384;
    wk_expect_compressed = false;
    wk_trace = scale_trace ~cold:288 ~hot:96 ~rounds;
  }

(* DBMS-flavoured trace: a full index scan warms the tree coldest-first,
   then skewed point lookups hit the last fifth of the key space. Under
   fault-order placement the root and internals (faulted first) sit on
   fast frames but the hot leaves are stuck on slow ones. *)
let btree_trace ~pages ~rounds kernel seg =
  let bt = Db_btree.create ~fanout:8 ~pages () in
  let touch_path key =
    List.iter
      (fun page -> K.touch kernel ~space:seg ~page ~access:Mgr.Read)
      (Db_btree.lookup_path bt ~key)
  in
  let keys = Db_btree.keys bt in
  for key = 0 to keys - 1 do
    touch_path key
  done;
  let hot_lo = keys * 4 / 5 in
  let hot_span = keys - hot_lo in
  for round = 0 to rounds - 1 do
    for i = 0 to 63 do
      touch_path (hot_lo + ((i + round) * 7 mod hot_span))
    done
  done

let btree_workload ~rounds =
  {
    wk_name = "btree";
    wk_fast_frames = 192;
    (* Just enough for the naive legs (fast + slow >= pages), but short of
       pages + the managed leg's pool working set — so the managed leg
       must push its coldest pages down into the compressed store. *)
    wk_slow_frames = 198;
    wk_pages = 384;
    wk_expect_compressed = true;
    wk_trace = btree_trace ~pages:384 ~rounds;
  }

(* ------------------------------------------------------------------ *)
(* Leg runners                                                         *)
(* ------------------------------------------------------------------ *)

(* The tier-oblivious baseline manager: one frame per missing fault,
   taken from the initial segment in address order (a monotone scan, like
   Wl_scale's capped_source). No pools, no tier awareness. *)
let naive_pager kernel =
  let init = K.initial_segment kernel in
  let next = ref 0 in
  let on_fault (fault : Mgr.fault) =
    let machine = K.machine kernel in
    Hw_machine.charge ~label:"mgr/fault_logic" machine
      machine.Hw_machine.cost.Hw_cost.manager_fault_logic;
    match fault.Mgr.f_kind with
    | Mgr.Missing | Mgr.Cow_write ->
        let init_seg = K.segment kernel init in
        let len = Seg.length init_seg in
        while !next < len && (Seg.page init_seg !next).Seg.frame = None do
          incr next
        done;
        if !next >= len then failwith "Exp_tier: naive pager out of frames";
        K.migrate_pages kernel ~src:init ~dst:fault.Mgr.f_seg ~src_page:!next
          ~dst_page:fault.Mgr.f_page ~count:1
          ~clear_flags:(Flags.of_list [ Flags.dirty; Flags.no_access; Flags.read_only ])
          ();
        incr next
    | Mgr.Protection ->
        K.modify_page_flags kernel ~seg:fault.Mgr.f_seg ~page:fault.Mgr.f_page ~count:1
          ~clear_flags:(Flags.of_list [ Flags.no_access; Flags.read_only ])
          ()
  in
  K.register_manager kernel ~name:"naive-pager" ~mode:`In_process ~on_fault ()

let conserved kernel machine =
  K.frame_owner_total kernel = Hw_machine.n_frames machine
  && K.frame_owner_audit kernel = K.frame_owner_audit_scan kernel
  && K.frame_owner_audit_tiered kernel = K.frame_owner_audit_tiered_scan kernel
  && Engine.live_processes machine.Hw_machine.engine = 0

let finish ~mode ~machine ~kernel ~seg ~mstats =
  let stats = K.stats kernel in
  let promotions, demotions_slow, demotions_compressed, refetches =
    match mstats with
    | None -> (0, 0, 0, 0)
    | Some (s : T.stats) ->
        (s.T.promotions, s.T.demotions_slow, s.T.demotions_compressed, s.T.refetches)
  in
  {
    g_mode = mode;
    g_frames = Hw_machine.n_frames machine;
    g_touches = stats.K.touches;
    g_faults = stats.K.faults_missing + stats.K.faults_protection + stats.K.faults_cow;
    g_migrate_calls = stats.K.migrate_calls;
    g_migrated_pages = stats.K.migrated_pages;
    g_events = Engine.events_executed machine.Hw_machine.engine;
    g_sim_us = Hw_machine.now machine;
    g_resident_by_tier = Array.to_list (Seg.resident_pages_by_tier (K.segment kernel seg));
    g_promotions = promotions;
    g_demotions_slow = demotions_slow;
    g_demotions_compressed = demotions_compressed;
    g_refetches = refetches;
    g_conserved = conserved kernel machine;
  }

let tiers_of wk =
  [
    Hw_phys_mem.dram_tier ~bytes:(wk.wk_fast_frames * page_size);
    Hw_phys_mem.slow_dram_tier ~bytes:(wk.wk_slow_frames * page_size);
  ]

(* flat / static share the naive pager; they differ only in the machine. *)
let run_plain ~mode ?tiers wk =
  let machine =
    match tiers with
    | None ->
        Hw_machine.create
          ~memory_bytes:((wk.wk_fast_frames + wk.wk_slow_frames) * page_size)
          ~page_size ()
    | Some tiers -> Hw_machine.create ~tiers ~page_size ()
  in
  let kernel = K.create machine in
  let mid = naive_pager kernel in
  let seg = K.create_segment kernel ~name:(wk.wk_name ^ "-heap") ~pages:wk.wk_pages () in
  K.set_segment_manager kernel seg mid;
  Engine.spawn machine.Hw_machine.engine (fun () -> wk.wk_trace kernel seg);
  Engine.run machine.Hw_machine.engine;
  finish ~mode ~machine ~kernel ~seg ~mstats:None

let run_managed wk =
  let machine = Hw_machine.create ~tiers:(tiers_of wk) ~page_size () in
  let kernel = K.create machine in
  let mgr = T.create kernel ~fast_pool_capacity:32 ~slow_pool_capacity:32 () in
  let seg = T.create_segment mgr ~name:(wk.wk_name ^ "-heap") ~pages:wk.wk_pages () in
  Engine.spawn machine.Hw_machine.engine (fun () -> wk.wk_trace kernel seg);
  Engine.run machine.Hw_machine.engine;
  finish ~mode:"managed" ~machine ~kernel ~seg ~mstats:(Some (T.stats mgr))

(* Each workload's three legs are independent deterministic simulations,
   so with --jobs they fan out over domains; the in-order join keeps the
   assembled record identical to a sequential run. *)
let run_workloads ~jobs wks =
  let legs =
    List.concat_map
      (fun wk ->
        [
          (fun () -> run_plain ~mode:"flat" wk);
          (fun () -> run_plain ~mode:"static" ~tiers:(tiers_of wk) wk);
          (fun () -> run_managed wk);
        ])
      wks
  in
  let results = Exp_par.map ~jobs legs in
  List.mapi
    (fun i wk ->
      {
        w_name = wk.wk_name;
        w_fast_frames = wk.wk_fast_frames;
        w_slow_frames = wk.wk_slow_frames;
        w_pages = wk.wk_pages;
        w_flat = List.nth results (3 * i);
        w_static = List.nth results ((3 * i) + 1);
        w_managed = List.nth results ((3 * i) + 2);
      })
    wks

(* ------------------------------------------------------------------ *)
(* The record                                                          *)
(* ------------------------------------------------------------------ *)

let checks_of ~expect_compressed r =
  let n = r.w_name in
  [
    Exp_report.check
      ~what:(Printf.sprintf "%s: per-tier frame conservation held in all legs" n)
      ~pass:(r.w_flat.g_conserved && r.w_static.g_conserved && r.w_managed.g_conserved)
      ~detail:(Printf.sprintf "%d frames" r.w_static.g_frames);
    Exp_report.check
      ~what:(Printf.sprintf "%s: flat and static legs ran the identical trace" n)
      ~pass:
        (r.w_flat.g_touches = r.w_static.g_touches && r.w_flat.g_faults = r.w_static.g_faults)
      ~detail:
        (Printf.sprintf "%d touches, %d faults" r.w_static.g_touches r.w_static.g_faults);
    Exp_report.check
      ~what:(Printf.sprintf "%s: tier surcharges are measurable (static > flat)" n)
      ~pass:(r.w_static.g_sim_us > r.w_flat.g_sim_us)
      ~detail:
        (Printf.sprintf "+%.0f us (%.0f vs %.0f)"
           (r.w_static.g_sim_us -. r.w_flat.g_sim_us)
           r.w_static.g_sim_us r.w_flat.g_sim_us);
    Exp_report.check
      ~what:(Printf.sprintf "%s: managed placement beats static (managed < static)" n)
      ~pass:(r.w_managed.g_sim_us < r.w_static.g_sim_us)
      ~detail:
        (Printf.sprintf "%.0f vs %.0f us (saves %.0f)" r.w_managed.g_sim_us
           r.w_static.g_sim_us
           (r.w_static.g_sim_us -. r.w_managed.g_sim_us));
    Exp_report.check
      ~what:(Printf.sprintf "%s: manager exercised promotion and demotion" n)
      ~pass:
        (r.w_managed.g_promotions > 0
        && r.w_managed.g_demotions_slow > 0
        && ((not expect_compressed) || r.w_managed.g_demotions_compressed > 0))
      ~detail:
        (Printf.sprintf "%d promoted, %d demoted, %d compressed, %d refetched"
           r.w_managed.g_promotions r.w_managed.g_demotions_slow
           r.w_managed.g_demotions_compressed r.w_managed.g_refetches);
  ]

let run ?(quick = false) ?(jobs = 1) () =
  let rounds = 1500 in
  let workloads =
    if quick then [ scale_workload ~rounds ]
    else [ scale_workload ~rounds; btree_workload ~rounds:1200 ]
  in
  let runs = run_workloads ~jobs workloads in
  let checks =
    List.concat_map
      (fun (wk, r) -> checks_of ~expect_compressed:wk.wk_expect_compressed r)
      (List.combine workloads runs)
  in
  { mode = (if quick then "quick" else "full"); runs; checks }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "Tier: single-tier vs tiered placement (%s record, %s mode)\n" schema_version
       r.mode);
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "\n%s (%d pages; fast %d + slow %d frames)\n" row.w_name row.w_pages
           row.w_fast_frames row.w_slow_frames);
      Buffer.add_string buf
        (Exp_report.fmt_table
           ~header:
             [
               "leg"; "faults"; "migrated"; "sim (us)"; "resident/tier"; "promote"; "demote";
               "compress";
             ]
           ~rows:
             (List.map
                (fun g ->
                  [
                    g.g_mode;
                    string_of_int g.g_faults;
                    string_of_int g.g_migrated_pages;
                    Printf.sprintf "%.0f" g.g_sim_us;
                    String.concat "/" (List.map string_of_int g.g_resident_by_tier);
                    string_of_int g.g_promotions;
                    string_of_int g.g_demotions_slow;
                    string_of_int g.g_demotions_compressed;
                  ])
                [ row.w_flat; row.w_static; row.w_managed ])))
    r.runs;
  Buffer.add_string buf "\nShape checks:\n";
  Buffer.add_string buf (Exp_report.render_checks r.checks);
  Buffer.contents buf

let leg_json g =
  J.Obj
    [
      ("mode", J.Str g.g_mode);
      ("frames", J.Num (float_of_int g.g_frames));
      ("touches", J.Num (float_of_int g.g_touches));
      ("faults", J.Num (float_of_int g.g_faults));
      ("migrate_calls", J.Num (float_of_int g.g_migrate_calls));
      ("migrated_pages", J.Num (float_of_int g.g_migrated_pages));
      ("events", J.Num (float_of_int g.g_events));
      ("sim_us", J.Num g.g_sim_us);
      ("resident_by_tier", J.List (List.map (fun n -> J.Num (float_of_int n)) g.g_resident_by_tier));
      ("promotions", J.Num (float_of_int g.g_promotions));
      ("demotions_slow", J.Num (float_of_int g.g_demotions_slow));
      ("demotions_compressed", J.Num (float_of_int g.g_demotions_compressed));
      ("refetches", J.Num (float_of_int g.g_refetches));
      ("conserved", J.Bool g.g_conserved);
    ]

let to_json r =
  J.Obj
    [
      ("schema", J.Str schema_version);
      ("mode", J.Str r.mode);
      ( "runs",
        J.List
          (List.map
             (fun row ->
               J.Obj
                 [
                   ("name", J.Str row.w_name);
                   ("fast_frames", J.Num (float_of_int row.w_fast_frames));
                   ("slow_frames", J.Num (float_of_int row.w_slow_frames));
                   ("pages", J.Num (float_of_int row.w_pages));
                   ("flat", leg_json row.w_flat);
                   ("static", leg_json row.w_static);
                   ("managed", leg_json row.w_managed);
                 ])
             r.runs) );
      ( "checks",
        J.List
          (List.map
             (fun (c : Exp_report.check) ->
               J.Obj
                 [
                   ("what", J.Str c.Exp_report.what);
                   ("pass", J.Bool c.Exp_report.pass);
                   ("detail", J.Str c.Exp_report.detail);
                 ])
             r.checks) );
    ]

let render_json r = J.to_string ~indent:true (to_json r) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let validate_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let require what = function Some v -> Ok v | None -> Error ("missing or ill-typed " ^ what) in
  let* schema = require "schema" (Option.bind (J.member "schema" json) J.to_str) in
  let* () =
    if schema = schema_version then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" schema schema_version)
  in
  let* _mode = require "mode" (Option.bind (J.member "mode" json) J.to_str) in
  let* runs = require "runs" (Option.bind (J.member "runs" json) J.to_list) in
  let* () = if runs <> [] then Ok () else Error "expected at least one run" in
  let leg_of what run =
    let* leg = require what (J.member what run) in
    let* sim_us = require (what ^ " sim_us") (Option.bind (J.member "sim_us" leg) J.to_float) in
    let* conserved =
      require (what ^ " conserved") (Option.bind (J.member "conserved" leg) J.to_bool)
    in
    if not conserved then Error (what ^ ": per-tier frame conservation failed")
    else if sim_us <= 0.0 then Error (what ^ ": empty leg")
    else Ok sim_us
  in
  let* () =
    List.fold_left
      (fun acc run ->
        let* () = acc in
        let* name = require "run name" (Option.bind (J.member "name" run) J.to_str) in
        let* flat = leg_of "flat" run in
        let* static_ = leg_of "static" run in
        let* managed = leg_of "managed" run in
        if static_ <= flat then Error (name ^ ": tier surcharge not measurable")
        else if managed >= static_ then Error (name ^ ": managed placement did not beat static")
        else Ok ())
      (Ok ()) runs
  in
  let* checks = require "checks" (Option.bind (J.member "checks" json) J.to_list) in
  List.fold_left
    (fun acc c ->
      let* () = acc in
      let* what = require "check what" (Option.bind (J.member "what" c) J.to_str) in
      let* pass = require "check pass" (Option.bind (J.member "pass" c) J.to_bool) in
      if pass then Ok () else Error ("failed check: " ^ what))
    (Ok ()) checks
