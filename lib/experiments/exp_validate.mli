(** Unified record validation: one validator per versioned record schema
    (vpp-perf/2, legacy vpp-perf/1, vpp-market/1, vpp-profile/1,
    vpp-tier/1, vpp-cache/1, vpp-shard/1), dispatched on the record's
    embedded
    ["schema"] tag. `vpp_repro validate` is a thin shell around this. *)

val validators : (string * (Sim_json.t -> (unit, string) result)) list
(** [(schema tag, validator)] for every known record schema. *)

val known_schemas : string list

val validate : Sim_json.t -> (string, string) result
(** Dispatch a parsed record to its schema's validator. [Ok tag] names
    the schema that validated; [Error] covers a missing ["schema"] tag,
    an unknown tag (both listing the known schemas) and validator
    failures (prefixed with the schema tag). *)

val validate_string : string -> (string, string) result
(** {!validate} after parsing; JSON syntax errors become [Error]. *)
