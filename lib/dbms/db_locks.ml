type mode = IS | IX | S | X

type resource = Database | Relation of int | Page of int * int

type txn = int

let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S) | (IX | S), IS -> true
  | IX, IX | S, S -> true
  | IS, X | X, IS | IX, (S | X) | (S | X), IX | S, X | X, (S | X) -> false

let covers ~held ~wanted =
  match (held, wanted) with
  | X, _ -> true
  | S, (S | IS) -> true
  | IX, (IX | IS) -> true
  | IS, IS -> true
  | (S | IX | IS), _ -> false

type waiter_state = Waiting | Granted | Cancelled

type waiter = {
  w_txn : txn;
  w_mode : mode;
  mutable w_resume : bool -> unit;
  mutable w_state : waiter_state;
}

type node = {
  mutable granted : (txn * mode) list;
  waiters : waiter Queue.t;
}

type t = {
  nodes : (resource, node) Hashtbl.t;
  by_txn : (txn, resource list) Hashtbl.t;
  mutable blocked : int;
  mutable total_blocked : int;
  mutable timeouts : int;
}

let create () =
  {
    nodes = Hashtbl.create 256;
    by_txn = Hashtbl.create 64;
    blocked = 0;
    total_blocked = 0;
    timeouts = 0;
  }

let node t r =
  match Hashtbl.find_opt t.nodes r with
  | Some n -> n
  | None ->
      let n = { granted = []; waiters = Queue.create () } in
      Hashtbl.replace t.nodes r n;
      n

let mode_of t ~txn r =
  List.assoc_opt txn (node t r).granted

let grantable node ~txn ~mode =
  List.for_all (fun (holder, m) -> holder = txn || compatible m mode) node.granted

let record t ~txn r =
  let existing = try Hashtbl.find t.by_txn txn with Not_found -> [] in
  Hashtbl.replace t.by_txn txn (r :: existing)

let acquire t ~txn r mode =
  let n = node t r in
  match mode_of t ~txn r with
  | Some held when covers ~held ~wanted:mode -> ()
  | Some held ->
      invalid_arg
        (Format.asprintf "Db_locks.acquire: upgrade %a -> %a unsupported"
           (fun ppf -> function
             | IS -> Format.pp_print_string ppf "IS"
             | IX -> Format.pp_print_string ppf "IX"
             | S -> Format.pp_print_string ppf "S"
             | X -> Format.pp_print_string ppf "X")
           held
           (fun ppf -> function
             | IS -> Format.pp_print_string ppf "IS"
             | IX -> Format.pp_print_string ppf "IX"
             | S -> Format.pp_print_string ppf "S"
             | X -> Format.pp_print_string ppf "X")
           mode)
  | None ->
      if Queue.is_empty n.waiters && grantable n ~txn ~mode then begin
        n.granted <- (txn, mode) :: n.granted;
        record t ~txn r
      end
      else begin
        t.blocked <- t.blocked + 1;
        t.total_blocked <- t.total_blocked + 1;
        ignore
          (Sim_engine.suspend (fun resume ->
               Queue.add
                 { w_txn = txn; w_mode = mode; w_resume = resume; w_state = Waiting }
                 n.waiters)
            : bool);
        (* We are resumed only once the lock has been granted on our
           behalf by [wake]. *)
        record t ~txn r
      end

let try_acquire t ~txn r mode =
  let n = node t r in
  match mode_of t ~txn r with
  | Some held when covers ~held ~wanted:mode -> true
  | Some _ -> false
  | None ->
      if Queue.is_empty n.waiters && grantable n ~txn ~mode then begin
        n.granted <- (txn, mode) :: n.granted;
        record t ~txn r;
        true
      end
      else false

(* Grant from the head of the queue while compatible (FIFO, no
   overtaking). Waiters cancelled by a timeout are tombstones: they are
   skipped here and never granted. *)
let wake t n =
  let continue_ = ref true in
  while !continue_ do
    match Queue.peek_opt n.waiters with
    | Some w when w.w_state = Cancelled -> ignore (Queue.pop n.waiters)
    | Some w when grantable n ~txn:w.w_txn ~mode:w.w_mode ->
        ignore (Queue.pop n.waiters);
        n.granted <- (w.w_txn, w.w_mode) :: n.granted;
        w.w_state <- Granted;
        t.blocked <- t.blocked - 1;
        w.w_resume true
    | Some _ | None -> continue_ := false
  done

let acquire_timeout t ~txn r mode ~timeout_us =
  let n = node t r in
  match mode_of t ~txn r with
  | Some held when covers ~held ~wanted:mode -> true
  | Some _ -> invalid_arg "Db_locks.acquire_timeout: upgrade unsupported"
  | None ->
      if Queue.is_empty n.waiters && grantable n ~txn ~mode then begin
        n.granted <- (txn, mode) :: n.granted;
        record t ~txn r;
        true
      end
      else begin
        t.blocked <- t.blocked + 1;
        t.total_blocked <- t.total_blocked + 1;
        let w = { w_txn = txn; w_mode = mode; w_resume = ignore; w_state = Waiting } in
        (* The deadline runs as its own process; if the waiter is still
           parked when it fires, the waiter is cancelled in place (wake
           skips it) and resumed with [false]. A cancelled head may have
           been the only thing blocking compatible waiters behind it, so
           give them a chance. The fork must happen here, in the waiting
           process, not inside [suspend]'s register callback (which runs
           on the scheduler stack where effects have no handler); the
           timer cannot fire before registration because registration
           completes within the same event. *)
        Sim_engine.fork ~name:"lock-timeout" (fun () ->
            Sim_engine.delay timeout_us;
            if w.w_state = Waiting then begin
              w.w_state <- Cancelled;
              t.blocked <- t.blocked - 1;
              t.timeouts <- t.timeouts + 1;
              wake t n;
              w.w_resume false
            end);
        let granted =
          Sim_engine.suspend (fun resume ->
              w.w_resume <- resume;
              Queue.add w n.waiters)
        in
        if granted then record t ~txn r;
        granted
      end

let release_all t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> ()
  | Some resources ->
      Hashtbl.remove t.by_txn txn;
      List.iter
        (fun r ->
          match Hashtbl.find_opt t.nodes r with
          | None -> ()
          | Some n ->
              n.granted <- List.filter (fun (holder, _) -> holder <> txn) n.granted;
              wake t n)
        (List.sort_uniq compare resources)

let held t ~txn =
  match Hashtbl.find_opt t.by_txn txn with
  | None -> []
  | Some resources ->
      List.filter_map
        (fun r -> Option.map (fun m -> (r, m)) (mode_of t ~txn r))
        (List.sort_uniq compare resources)

let waiting t = t.blocked
let total_blocked t = t.total_blocked
let timeouts t = t.timeouts

let pp_mode ppf = function
  | IS -> Format.pp_print_string ppf "IS"
  | IX -> Format.pp_print_string ppf "IX"
  | S -> Format.pp_print_string ppf "S"
  | X -> Format.pp_print_string ppf "X"

let pp_resource ppf = function
  | Database -> Format.pp_print_string ppf "db"
  | Relation r -> Format.fprintf ppf "rel(%d)" r
  | Page (r, p) -> Format.fprintf ppf "page(%d,%d)" r p
