(** A complete simulated machine: engine + memory + translation hardware +
    disk + cost table, bundled for the kernels to run on. *)

type preset = Decstation_5000_200 | Sgi_4d_380

type cache_spec = { c_size_bytes : int; c_line_bytes : int }
(** Geometry of the optional physically-indexed L2 attached at {!create}. *)

val l2_cache : ?line_bytes:int -> size_bytes:int -> unit -> cache_spec
(** Default 64-byte lines, matching {!Hw_cache.create}. *)

type t = {
  engine : Sim_engine.t;
  mem : Hw_phys_mem.t;
  page_table : Hw_page_table.t;
  tlb : Hw_tlb.t;
  disk : Hw_disk.t;
  cost : Hw_cost.t;
  trace : Sim_trace.t;
  metrics : Sim_metrics.t;
  super_pages : int;
  caches : Hw_cache.t array;
      (** One physically-indexed L2 per memory tier (a node-local cache),
          all of the [cache_spec] geometry; empty when the machine was
          built without [?cache]. Every kernel cache pass is guarded on
          [Array.length caches > 0], so a cache-less machine is
          bit-identical to the pre-cache model. *)
}

val create :
  ?preset:preset ->
  ?memory_bytes:int ->
  ?page_size:int ->
  ?n_colors:int ->
  ?tiers:Hw_phys_mem.tier_spec list ->
  ?super_pages:int ->
  ?trace:bool ->
  ?disk_params:Hw_disk.params ->
  ?cache:cache_spec ->
  unit ->
  t
(** Defaults: DECstation preset, 16 MB memory (large enough for the unit
    tests; experiments pass their own size), 4 KB pages, 16 colors, trace
    off. The paper's machines: DECstation 5000/200 with 128 MB (Tables
    1–3); SGI 4D/380 for Table 4. [tiers] builds a multi-tier memory
    ({!Hw_phys_mem.create_tiered}) and supersedes [memory_bytes]; without
    it, memory is one zero-surcharge DRAM tier and the machine behaves
    byte-identically to the pre-tier model. [super_pages] is the number
    of base pages per superpage (default 512, i.e. 2 MB of 4 KB pages),
    sizing the page table's and TLB's superpage areas; machines that
    never promote a superpage behave byte-identically regardless of its
    value. [cache] attaches one {!Hw_cache} per memory tier; kernel
    touch and UIO paths then feed physical addresses through it and
    charge {!Hw_cost.t.cache_miss_penalty} per miss — without it no
    cache state exists and nothing extra is charged. *)

val page_size : t -> int
val n_frames : t -> int

val super_pages : t -> int
(** Base pages per superpage mapping ([super_pages] at {!create}). *)

val n_caches : t -> int
(** [Array.length caches]: 0 exactly when no cache model is attached. *)

val cache_colors : t -> int option
(** Page colors the attached cache geometry induces at this machine's
    page size ({!Hw_cache.n_colors}); [None] without a cache. The live
    geometry {!Mgr_coloring} sizes its placement policy against. *)

val cache_stats : t -> int * int * int
(** [(accesses, hits, misses)] summed over the per-tier caches. *)

val charge : ?label:string -> t -> float -> unit
(** Advance the calling process by a cost-model amount (clamped at 0).
    Outside a simulation process this is a no-op, so semantics-only unit
    tests can drive the kernels without an engine. When profiling is on
    (see {!set_profiling}) the amount is also attributed to [label] under
    the open {!with_span} path; without profiling the label costs
    nothing. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Open a cost-attribution span around a thunk (see
    {!Sim_metrics.with_span}); identity when profiling is off. *)

val observe : t -> kind:string -> float -> unit
(** Feed a latency sample into the machine's metrics sink; no-op when
    profiling is off. *)

val metrics : t -> Sim_metrics.t
(** The machine's metrics sink (shared with its disk). *)

val set_profiling : t -> bool -> unit
(** Toggle the metrics sink. Off (the default) preserves byte-identical
    behaviour of all instrumented paths. *)

val now : t -> float

val trace_emit : t -> tag:string -> (unit -> string) -> unit
(** Append a protocol-trace event. The detail thunk is forced only when
    the trace is enabled, so emit sites on kernel hot paths cost one
    branch and one closure — not a formatted string — when tracing is
    off (the default). *)
