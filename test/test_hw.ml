(* Tests for the hardware substrate: page data, physical memory, the V++
   mapping hash, the TLB, the disk model and the cache model. *)

module Data = Hw_page_data
module Phys = Hw_phys_mem
module Pt = Hw_page_table
module Tlb = Hw_tlb
module Disk = Hw_disk
module Cache = Hw_cache
module Engine = Sim_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* ------------------------------------------------------------------ *)
(* Page data                                                          *)
(* ------------------------------------------------------------------ *)

let test_data_equal () =
  check_bool "zero = zero" true (Data.equal Data.Zero Data.Zero);
  check_bool "bytes equal" true (Data.equal (Data.of_string "abc") (Data.of_string "abc"));
  check_bool "bytes differ" false (Data.equal (Data.of_string "abc") (Data.of_string "abd"));
  check_bool "block identity" true
    (Data.equal (Data.block ~file:1 ~block:2 ~version:3) (Data.block ~file:1 ~block:2 ~version:3));
  check_bool "block version matters" false
    (Data.equal (Data.block ~file:1 ~block:2 ~version:3) (Data.block ~file:1 ~block:2 ~version:4));
  check_bool "kinds differ" false (Data.equal Data.Zero (Data.of_string ""))

let test_data_byte_observation () =
  check_bool "zero reads as 0" true (Data.byte Data.Zero 123 = '\000');
  check_bool "bytes read back" true (Data.byte (Data.of_string "xy") 1 = 'y');
  check_bool "bytes past end are 0" true (Data.byte (Data.of_string "xy") 5 = '\000');
  let b1 = Data.byte (Data.block ~file:1 ~block:2 ~version:1) 10 in
  let b1' = Data.byte (Data.block ~file:1 ~block:2 ~version:1) 10 in
  let b2 = Data.byte (Data.block ~file:1 ~block:2 ~version:2) 10 in
  check_bool "block bytes deterministic" true (b1 = b1');
  check_bool "version changes content" true (b1 <> b2 || Data.byte (Data.block ~file:1 ~block:2 ~version:2) 11 <> Data.byte (Data.block ~file:1 ~block:2 ~version:1) 11)

(* ------------------------------------------------------------------ *)
(* Physical memory                                                    *)
(* ------------------------------------------------------------------ *)

let test_phys_layout () =
  let m = Phys.create ~n_colors:4 ~page_size:4096 ~total_bytes:(16 * 4096) () in
  check_int "frames" 16 (Phys.n_frames m);
  check_int "addr of frame 3" (3 * 4096) (Phys.frame m 3).Phys.addr;
  check_int "color cycles" 3 (Phys.frame m 3).Phys.color;
  check_int "color wraps" 0 (Phys.frame m 4).Phys.color

let test_phys_queries () =
  let m = Phys.create ~n_colors:4 ~page_size:4096 ~total_bytes:(16 * 4096) () in
  Alcotest.(check (list int)) "frames of color 1" [ 1; 5; 9; 13 ] (Phys.frames_of_color m 1);
  Alcotest.(check (list int)) "address range" [ 2; 3 ]
    (Phys.frames_in_range m ~lo_addr:8192 ~hi_addr:16384)

(* The color/range queries are served from indexes precomputed at create
   (per-color frame lists, interval arithmetic) instead of scanning the
   frame array. Pin them against the naive scan they replaced, across
   awkward geometries: colors > frames, a single frame, unaligned and
   out-of-range address bounds. *)
let test_phys_indexes_match_scan () =
  let geometries =
    [ (4, 4096, 16 * 4096); (16, 4096, 7 * 4096); (3, 8192, 11 * 8192); (16, 4096, 4096) ]
  in
  List.iter
    (fun (n_colors, page_size, total_bytes) ->
      let m = Phys.create ~n_colors ~page_size ~total_bytes () in
      let scan keep =
        List.filter (fun i -> keep (Phys.frame m i)) (List.init (Phys.n_frames m) Fun.id)
      in
      for color = 0 to Phys.n_colors m - 1 do
        Alcotest.(check (list int))
          (Printf.sprintf "color %d of %d/%d frames" color n_colors (Phys.n_frames m))
          (scan (fun f -> f.Phys.color = color))
          (Phys.frames_of_color m color)
      done;
      let ranges =
        [
          (0, total_bytes);
          (page_size, 3 * page_size);
          (page_size / 2, (2 * page_size) + 1);
          (total_bytes - page_size, 2 * total_bytes);
          (total_bytes, total_bytes + page_size);
          (100, 100);
        ]
      in
      List.iter
        (fun (lo_addr, hi_addr) ->
          Alcotest.(check (list int))
            (Printf.sprintf "range [%d, %d)" lo_addr hi_addr)
            (scan (fun f -> f.Phys.addr >= lo_addr && f.Phys.addr < hi_addr))
            (Phys.frames_in_range m ~lo_addr ~hi_addr))
        ranges)
    geometries

let test_phys_copy_zero () =
  let m = Phys.create ~page_size:4096 ~total_bytes:(4 * 4096) () in
  (Phys.frame m 0).Phys.data <- Data.of_string "payload";
  Phys.copy_frame m ~src:0 ~dst:1;
  check_bool "copied" true (Data.equal (Phys.frame m 1).Phys.data (Data.of_string "payload"));
  Phys.zero_frame m 1;
  check_bool "zeroed" true (Data.equal (Phys.frame m 1).Phys.data Data.Zero)

let test_phys_bad_create () =
  Alcotest.check_raises "no pages"
    (Invalid_argument "Hw_phys_mem.create: need at least one page") (fun () ->
      ignore (Phys.create ~page_size:4096 ~total_bytes:100 ()))

(* Tiers partition the frame index space in declaration order; address
   and color arithmetic are unchanged across the tier boundary. *)
let test_phys_tiered_layout () =
  let m =
    Phys.create_tiered ~n_colors:4 ~page_size:4096
      ~tiers:[ Phys.dram_tier ~bytes:(6 * 4096); Phys.slow_dram_tier ~bytes:(10 * 4096) ]
      ()
  in
  check_int "frames" 16 (Phys.n_frames m);
  check_int "tiers" 2 (Phys.n_tiers m);
  check_bool "tier 0 interval" true (Phys.tier_bounds m 0 = (0, 6));
  check_bool "tier 1 interval" true (Phys.tier_bounds m 1 = (6, 10));
  check_int "last fast frame" 0 (Phys.tier_of_frame m 5);
  check_int "first slow frame" 1 (Phys.tier_of_frame m 6);
  (* Address/color arithmetic is tier-blind: same as the flat machine. *)
  check_int "addr crosses the boundary linearly" (7 * 4096) (Phys.frame m 7).Phys.addr;
  check_int "color keeps cycling" 3 (Phys.frame m 7).Phys.color;
  (* Cost surcharges come from the tier spec. *)
  check_float "dram access surcharge" 0.0 (Phys.tier_access_us m 0);
  check_bool "slow tier surcharges" true
    (Phys.tier_access_us m 1 > 0.0 && Phys.tier_migrate_us m 1 > 0.0);
  (* A flat [create] is exactly one zero-surcharge dram tier. *)
  let flat = Phys.create ~n_colors:4 ~page_size:4096 ~total_bytes:(16 * 4096) () in
  check_int "flat = one tier" 1 (Phys.n_tiers flat);
  check_bool "covering everything" true (Phys.tier_bounds flat 0 = (0, 16));
  check_float "with no surcharge" 0.0 (Phys.tier_access_us flat 0)

(* Tier-scoped color/range queries against the naive filter of the
   unscoped result. *)
let test_phys_tier_scoped_queries () =
  let m =
    Phys.create_tiered ~n_colors:4 ~page_size:4096
      ~tiers:[ Phys.dram_tier ~bytes:(6 * 4096); Phys.slow_dram_tier ~bytes:(10 * 4096) ]
      ()
  in
  for tier = 0 to 1 do
    for color = 0 to 3 do
      Alcotest.(check (list int))
        (Printf.sprintf "color %d of tier %d" color tier)
        (List.filter (fun i -> Phys.tier_of_frame m i = tier) (Phys.frames_of_color m color))
        (Phys.frames_of_color ~tier m color)
    done;
    List.iter
      (fun (lo_addr, hi_addr) ->
        Alcotest.(check (list int))
          (Printf.sprintf "range [%d, %d) in tier %d" lo_addr hi_addr tier)
          (List.filter
             (fun i -> Phys.tier_of_frame m i = tier)
             (Phys.frames_in_range m ~lo_addr ~hi_addr))
          (Phys.frames_in_range ~tier m ~lo_addr ~hi_addr))
      [ (0, 16 * 4096); (4 * 4096, 9 * 4096); (100, 100) ]
  done

(* The owner tag is only writable through set_owner; the histogram sums
   to the whole machine. *)
let test_phys_owner_tag () =
  let m = Phys.create ~page_size:4096 ~total_bytes:(4 * 4096) () in
  check_int "unowned at creation" (-1) (Phys.owner m 0);
  Phys.set_owner m 0 7;
  Phys.set_owner m 1 7;
  Phys.set_owner m 2 9;
  check_int "tag reads back" 7 (Phys.owner m 1);
  let hist = List.sort compare (Phys.owners_histogram m) in
  check_bool "histogram" true (hist = [ (-1, 1); (7, 2); (9, 1) ]);
  check_int "histogram covers every frame" 4
    (List.fold_left (fun acc (_, n) -> acc + n) 0 hist)

(* Aligned-run search over the owner tags: the physical backing of one
   superpage. Alignment is absolute (frame index mod run), mismatches
   make the scan jump past the offending frame, and a tier restricts the
   window to that tier's frame interval. *)
let test_phys_find_aligned_run () =
  let m = Phys.create ~page_size:4096 ~total_bytes:(32 * 4096) () in
  for i = 0 to 31 do
    Phys.set_owner m i 5
  done;
  check_bool "first aligned window" true (Phys.find_aligned_run m ~start:0 ~run:8 ~owned_by:5 = Some 0);
  check_bool "start rounds up to alignment" true
    (Phys.find_aligned_run m ~start:1 ~run:8 ~owned_by:5 = Some 8);
  Phys.set_owner m 12 9;
  check_bool "mismatch skips the window" true
    (Phys.find_aligned_run m ~start:8 ~run:8 ~owned_by:5 = Some 16);
  check_bool "no window after the tail" true
    (Phys.find_aligned_run m ~start:25 ~run:8 ~owned_by:5 = None);
  check_bool "whole-machine run" true (Phys.find_aligned_run m ~start:0 ~run:32 ~owned_by:5 = None);
  let tiered =
    Phys.create_tiered ~page_size:4096
      ~tiers:[ Phys.dram_tier ~bytes:(8 * 4096); Phys.slow_dram_tier ~bytes:(24 * 4096) ]
      ()
  in
  for i = 0 to 31 do
    Phys.set_owner tiered i 5
  done;
  check_bool "tier 0 window" true
    (Phys.find_aligned_run ~tier:0 tiered ~start:0 ~run:8 ~owned_by:5 = Some 0);
  check_bool "tier 0 has no second window" true
    (Phys.find_aligned_run ~tier:0 tiered ~start:1 ~run:8 ~owned_by:5 = None);
  check_bool "tier 1 windows are absolute-aligned" true
    (Phys.find_aligned_run ~tier:1 tiered ~start:0 ~run:8 ~owned_by:5 = Some 8)

(* ------------------------------------------------------------------ *)
(* Mapping hash                                                       *)
(* ------------------------------------------------------------------ *)

let prot_rw = { Pt.readable = true; writable = true }

let test_pt_insert_lookup () =
  let pt = Pt.create () in
  Pt.insert pt ~space:1 ~vpn:10 ~frame:5 ~prot:prot_rw;
  (match Pt.lookup pt ~space:1 ~vpn:10 with
  | Some (5, p) -> check_bool "prot" true p.Pt.writable
  | Some _ | None -> Alcotest.fail "expected hit");
  check_int "one hit" 1 (Pt.hits pt);
  check_bool "miss on other key" true (Pt.lookup pt ~space:1 ~vpn:11 = None);
  check_int "one miss" 1 (Pt.misses pt)

let test_pt_remove () =
  let pt = Pt.create () in
  Pt.insert pt ~space:1 ~vpn:10 ~frame:5 ~prot:prot_rw;
  Pt.remove pt ~space:1 ~vpn:10;
  check_bool "gone" true (Pt.lookup pt ~space:1 ~vpn:10 = None)

let test_pt_remove_space () =
  let pt = Pt.create () in
  Pt.insert pt ~space:1 ~vpn:10 ~frame:5 ~prot:prot_rw;
  Pt.insert pt ~space:1 ~vpn:11 ~frame:6 ~prot:prot_rw;
  Pt.insert pt ~space:2 ~vpn:10 ~frame:7 ~prot:prot_rw;
  Pt.remove_space pt ~space:1;
  check_bool "space 1 vpn 10 gone" true (Pt.lookup pt ~space:1 ~vpn:10 = None);
  check_bool "space 2 survives" true (Pt.lookup pt ~space:2 ~vpn:10 <> None)

let test_pt_collision_overflow () =
  (* A tiny direct-mapped table forces collisions; the displaced entry
     must survive in the overflow area. *)
  let pt = Pt.create ~slots:1 ~overflow:4 () in
  Pt.insert pt ~space:1 ~vpn:1 ~frame:10 ~prot:prot_rw;
  Pt.insert pt ~space:1 ~vpn:2 ~frame:20 ~prot:prot_rw;
  check_bool "collision recorded" true (Pt.collisions pt >= 1);
  check_bool "displaced entry still found" true
    (match Pt.lookup pt ~space:1 ~vpn:1 with Some (10, _) -> true | _ -> false);
  check_bool "new entry found" true
    (match Pt.lookup pt ~space:1 ~vpn:2 with Some (20, _) -> true | _ -> false)

let test_pt_overflow_eviction () =
  (* With the overflow full, the oldest overflow entry is discarded — a
     cache, not a store. *)
  let pt = Pt.create ~slots:1 ~overflow:2 () in
  for vpn = 1 to 5 do
    Pt.insert pt ~space:1 ~vpn ~frame:vpn ~prot:prot_rw
  done;
  check_int "resident bounded" 3 (Pt.resident pt)

(* Churn the overflow area hard (tiny table, interleaved inserts, removes
   and a remove_space) and hold the hash to its cache contract against a
   model map: a lookup may miss, but whatever it returns must be the live
   frame for that key, and removed keys must never resurface. The
   overflow scans run as plain loops on the fault path, so this is the
   regression net for those loops. *)
let test_pt_overflow_churn_matches_model () =
  let pt = Pt.create ~slots:8 ~overflow:4 () in
  let model = Hashtbl.create 64 in
  let insert space vpn frame =
    Pt.insert pt ~space ~vpn ~frame ~prot:prot_rw;
    Hashtbl.replace model (space, vpn) frame
  in
  let remove space vpn =
    Pt.remove pt ~space ~vpn;
    Hashtbl.remove model (space, vpn)
  in
  let audit what =
    Hashtbl.iter
      (fun (space, vpn) frame ->
        match Pt.lookup pt ~space ~vpn with
        | Some (f, _) ->
            check_int (Printf.sprintf "%s: (%d,%d) serves the live frame" what space vpn) frame f
        | None -> ())
      model;
    (* Nothing cached that the model does not know about. *)
    check_bool (what ^ ": no ghost entries") true (Pt.resident pt <= Hashtbl.length model)
  in
  for vpn = 0 to 39 do
    insert (vpn mod 3) vpn (100 + vpn)
  done;
  audit "after fill";
  for vpn = 0 to 39 do
    if vpn mod 2 = 0 then remove (vpn mod 3) vpn
  done;
  audit "after removes";
  List.iter
    (fun (space, vpn) ->
      check_bool
        (Printf.sprintf "removed (%d,%d) stays gone" space vpn)
        true
        (Pt.lookup pt ~space ~vpn = None))
    [ (0, 0); (2, 2); (1, 4) ];
  for vpn = 0 to 19 do
    insert (vpn mod 3) vpn (200 + vpn)
  done;
  audit "after reinserts";
  Pt.remove_space pt ~space:1;
  Hashtbl.iter
    (fun (space, vpn) _ ->
      if space = 1 then
        check_bool (Printf.sprintf "space 1 vpn %d flushed" vpn) true
          (Pt.lookup pt ~space ~vpn = None))
    model;
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
  List.iter (fun ((space, _) as k) -> if space = 1 then Hashtbl.remove model k) keys;
  audit "after remove_space"

(* Hw_machine sizes the mapping hash to the physical frame count once a
   machine outgrows the 64K-slot default, so frames map 1:1 to slots and
   warm scans at the perf record's sizes stay hash hits. Paper-scale
   machines keep the default — their records (substrate stats, Table 1)
   are unchanged. *)
let test_machine_pt_sized_to_memory () =
  let small = Hw_machine.create ~memory_bytes:(16 * 1024 * 1024) () in
  check_int "paper-scale machine keeps the 64K default" 65536
    (Pt.capacity small.Hw_machine.page_table);
  let frames = 65536 + 256 in
  let big = Hw_machine.create ~memory_bytes:(frames * 4096) () in
  check_int "large machine gets one slot per frame" frames
    (Pt.capacity big.Hw_machine.page_table)

let test_pt_update_in_place () =
  let pt = Pt.create () in
  Pt.insert pt ~space:1 ~vpn:1 ~frame:10 ~prot:prot_rw;
  Pt.insert pt ~space:1 ~vpn:1 ~frame:11 ~prot:{ Pt.readable = true; writable = false };
  match Pt.lookup pt ~space:1 ~vpn:1 with
  | Some (11, p) -> check_bool "updated prot" false p.Pt.writable
  | Some _ | None -> Alcotest.fail "expected updated entry"

(* Superpage entries resolve before the 4 KB probe and translate every
   base page of their aligned run. *)
let test_pt_super_basics () =
  let pt = Pt.create ~slots:16 ~overflow:4 ~super_slots:8 ~super_pages:8 () in
  Pt.insert_super pt ~space:1 ~svpn:2 ~frame:80 ~prot:prot_rw;
  check_int "one superpage resident" 1 (Pt.super_resident pt);
  (match Pt.lookup_sized pt ~space:1 ~vpn:16 with
  | Some (80, _, Pt.Super) -> ()
  | _ -> Alcotest.fail "expected super hit at run base");
  (match Pt.lookup_sized pt ~space:1 ~vpn:23 with
  | Some (87, _, Pt.Super) -> ()
  | _ -> Alcotest.fail "expected super hit at run end");
  check_int "super hits counted" 2 (Pt.super_hits pt);
  check_int "super hits also count as hits" 2 (Pt.hits pt);
  check_bool "outside the run misses" true (Pt.lookup pt ~space:1 ~vpn:24 = None);
  check_bool "other space misses" true (Pt.lookup pt ~space:2 ~vpn:16 = None);
  (* A super entry shadows any 4 KB entry under it. *)
  Pt.insert pt ~space:1 ~vpn:17 ~frame:999 ~prot:prot_rw;
  (match Pt.lookup_sized pt ~space:1 ~vpn:17 with
  | Some (81, _, Pt.Super) -> ()
  | _ -> Alcotest.fail "super entry must shadow the 4 KB entry");
  Pt.remove_super pt ~space:1 ~svpn:2;
  check_int "removed" 0 (Pt.super_resident pt);
  (match Pt.lookup_sized pt ~space:1 ~vpn:17 with
  | Some (999, _, Pt.Base) -> ()
  | _ -> Alcotest.fail "4 KB entry resurfaces after demotion")

let test_pt_super_collision_and_space () =
  let pt = Pt.create ~slots:16 ~super_slots:1 ~super_pages:8 () in
  Pt.insert_super pt ~space:1 ~svpn:0 ~frame:0 ~prot:prot_rw;
  Pt.insert_super pt ~space:1 ~svpn:1 ~frame:8 ~prot:prot_rw;
  check_int "collision displaces" 1 (Pt.super_resident pt);
  check_int "collision counted" 1 (Pt.super_collisions pt);
  check_bool "displaced run misses" true (Pt.lookup pt ~space:1 ~vpn:0 = None);
  check_bool "winner serves" true (Pt.lookup pt ~space:1 ~vpn:8 = Some (8, prot_rw));
  Pt.remove_space pt ~space:1;
  check_int "space teardown clears supers" 0 (Pt.super_resident pt);
  check_bool "gone after teardown" true (Pt.lookup pt ~space:1 ~vpn:8 = None)

(* ------------------------------------------------------------------ *)
(* TLB                                                                *)
(* ------------------------------------------------------------------ *)

let test_tlb_basics () =
  let tlb = Tlb.create ~entries:8 () in
  check_bool "cold miss" true (Tlb.lookup tlb ~space:1 ~vpn:3 = None);
  Tlb.fill tlb ~space:1 ~vpn:3 ~frame:7;
  check_bool "hit" true (Tlb.lookup tlb ~space:1 ~vpn:3 = Some 7);
  Tlb.invalidate tlb ~space:1 ~vpn:3;
  check_bool "invalidated" true (Tlb.lookup tlb ~space:1 ~vpn:3 = None);
  check_int "misses" 2 (Tlb.misses tlb);
  check_int "hits" 1 (Tlb.hits tlb)

let test_tlb_space_invalidation () =
  let tlb = Tlb.create () in
  Tlb.fill tlb ~space:1 ~vpn:1 ~frame:1;
  Tlb.fill tlb ~space:2 ~vpn:2 ~frame:2;
  Tlb.invalidate_space tlb ~space:1;
  check_bool "space 1 gone" true (Tlb.lookup tlb ~space:1 ~vpn:1 = None);
  check_bool "space 2 stays" true (Tlb.lookup tlb ~space:2 ~vpn:2 = Some 2)

let test_tlb_hit_rate () =
  let tlb = Tlb.create () in
  Tlb.fill tlb ~space:1 ~vpn:1 ~frame:1;
  ignore (Tlb.lookup tlb ~space:1 ~vpn:1);
  ignore (Tlb.lookup tlb ~space:1 ~vpn:9999);
  check_float "50%" 0.5 (Tlb.hit_rate tlb)

let test_tlb_super () =
  let tlb = Tlb.create ~entries:4 ~super_entries:2 ~super_pages:8 () in
  Tlb.fill_super tlb ~space:1 ~svpn:1 ~frame:40;
  check_bool "covers the run base" true (Tlb.lookup tlb ~space:1 ~vpn:8 = Some 40);
  (match Tlb.lookup_sized tlb ~space:1 ~vpn:15 with
  | Some (47, true) -> ()
  | _ -> Alcotest.fail "expected super-resolved hit at run end");
  check_int "super hits counted" 2 (Tlb.super_hits tlb);
  check_bool "outside the run misses" true (Tlb.lookup tlb ~space:1 ~vpn:16 = None);
  (* Base fills still work alongside and are reported as base hits. *)
  Tlb.fill tlb ~space:1 ~vpn:16 ~frame:99;
  (match Tlb.lookup_sized tlb ~space:1 ~vpn:16 with
  | Some (99, false) -> ()
  | _ -> Alcotest.fail "expected base hit");
  Tlb.invalidate_super tlb ~space:1 ~svpn:1;
  check_bool "invalidated" true (Tlb.lookup tlb ~space:1 ~vpn:8 = None);
  Tlb.fill_super tlb ~space:1 ~svpn:1 ~frame:40;
  Tlb.invalidate_space tlb ~space:1;
  check_bool "space invalidation clears supers" true (Tlb.lookup tlb ~space:1 ~vpn:8 = None);
  Tlb.fill_super tlb ~space:1 ~svpn:1 ~frame:40;
  Tlb.flush tlb;
  check_bool "flush clears supers" true (Tlb.lookup tlb ~space:1 ~vpn:8 = None)

(* ------------------------------------------------------------------ *)
(* Disk                                                               *)
(* ------------------------------------------------------------------ *)

let test_disk_service_time () =
  let e = Engine.create () in
  let d = Disk.create e () in
  let expected = Disk.access_time_us d ~bytes:4096 in
  let elapsed = ref 0.0 in
  Engine.spawn e (fun () ->
      let t0 = Engine.time () in
      Disk.read d ~bytes:4096;
      elapsed := Engine.time () -. t0);
  Engine.run e;
  check_float "one access" expected !elapsed;
  check_int "read counted" 1 (Disk.reads d);
  check_int "bytes counted" 4096 (Disk.bytes_read d)

let test_disk_serialises () =
  let e = Engine.create () in
  let d = Disk.create e () in
  let t_one = Disk.access_time_us d ~bytes:4096 in
  let finish = ref 0.0 in
  for _ = 1 to 3 do
    Engine.spawn e (fun () ->
        Disk.read d ~bytes:4096;
        finish := Engine.time ())
  done;
  Engine.run e;
  check_float "three serialised accesses" (3.0 *. t_one) !finish

let test_disk_1992_latency () =
  (* Paper §1: a page fault to disk costs close to a million instruction
     times — tens of milliseconds. *)
  let e = Engine.create () in
  let d = Disk.create e () in
  let t = Disk.access_time_us d ~bytes:4096 in
  check_bool "in the 10-30ms range" true (t > 10_000.0 && t < 30_000.0)

(* ------------------------------------------------------------------ *)
(* Cache model                                                        *)
(* ------------------------------------------------------------------ *)

let test_cache_conflicts () =
  let c = Cache.create ~size_bytes:(64 * 1024) () in
  (* Two addresses one cache-size apart collide in a direct-mapped
     cache. *)
  check_bool "cold miss" false (Cache.access c ~phys_addr:0);
  check_bool "conflict miss" false (Cache.access c ~phys_addr:(64 * 1024));
  check_bool "evicted: miss again" false (Cache.access c ~phys_addr:0);
  check_int "all misses" 3 (Cache.misses c);
  (* Two addresses in distinct sets do not (fresh cache: reset_stats keeps
     contents, so reuse would hit on the still-cached line). *)
  let c = Cache.create ~size_bytes:(64 * 1024) () in
  ignore (Cache.access c ~phys_addr:0);
  ignore (Cache.access c ~phys_addr:64);
  check_bool "warm hit" true (Cache.access c ~phys_addr:0);
  check_bool "warm hit" true (Cache.access c ~phys_addr:64);
  check_int "two cold misses" 2 (Cache.misses c);
  check_int "two hits" 2 (Cache.hits c);
  check_int "accesses = hits + misses" (Cache.hits c + Cache.misses c) (Cache.accesses c)

let test_cache_colors () =
  let c = Cache.create ~size_bytes:(64 * 1024) () in
  check_int "16 colors for 4KB pages" 16 (Cache.n_colors c ~page_bytes:4096);
  check_int "page color cycles" 1 (Cache.color_of c ~phys_addr:4096 ~page_bytes:4096);
  check_int "wraps at cache size" 0 (Cache.color_of c ~phys_addr:(64 * 1024) ~page_bytes:4096)

(* Pin the documented identity n_colors = sets * line_bytes / page_bytes
   (clamped at 1 when the page exceeds the cache) across geometries. *)
let test_cache_n_colors_identity () =
  List.iter
    (fun (size_bytes, line_bytes, page_bytes) ->
      let c = Cache.create ~line_bytes ~size_bytes () in
      check_int
        (Printf.sprintf "%dB cache, %dB lines, %dB pages" size_bytes line_bytes page_bytes)
        (max 1 (Cache.sets c * line_bytes / page_bytes))
        (Cache.n_colors c ~page_bytes))
    [
      (64 * 1024, 64, 4096);
      (64 * 1024, 32, 4096);
      (128 * 1024, 64, 8192);
      (8 * 1024, 64, 4096);
      (2 * 1024, 64, 4096) (* page bigger than the cache: one color *);
    ]

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let prop_pt_lookup_after_insert =
  QCheck.Test.make ~name:"mapping hash: insert then lookup finds the frame" ~count:200
    QCheck.(pair (int_bound 100) (int_bound 100_000))
    (fun (space, vpn) ->
      let pt = Pt.create () in
      Pt.insert pt ~space ~vpn ~frame:7 ~prot:prot_rw;
      match Pt.lookup pt ~space ~vpn with Some (7, _) -> true | _ -> false)

(* With a single direct-mapped slot every insert collides, so the table
   holds the newest k+1 entries (slot + overflow) and a full overflow
   discards its oldest entry — a cache, never a store. *)
let prop_pt_overflow_oldest_discarded =
  QCheck.Test.make ~name:"mapping hash: full overflow discards the oldest entry" ~count:200
    QCheck.(pair (int_range 1 6) (int_range 1 20))
    (fun (k, n) ->
      let pt = Pt.create ~slots:1 ~overflow:k () in
      for vpn = 1 to n do
        Pt.insert pt ~space:7 ~vpn ~frame:(100 + vpn) ~prot:prot_rw
      done;
      let live = min n (k + 1) in
      let ok = ref (Pt.resident pt = live) in
      for vpn = 1 to n do
        let expect = if vpn > n - live then Some (100 + vpn) else None in
        let got = Option.map fst (Pt.lookup pt ~space:7 ~vpn) in
        if got <> expect then ok := false
      done;
      !ok)

(* Differential model of the base mapping hash: same geometry and hash,
   naive reference code. Random insert/remove/remove_space/lookup churn
   must leave both with identical contents and identical hit/miss/
   collision/resident statistics. *)
module Pt_model = struct
  type entry = { m_space : int; m_vpn : int; m_frame : int }

  type t = {
    slots : entry option array;
    overflow : entry option array;
    mutable next : int;
    mutable hits : int;
    mutable misses : int;
    mutable collisions : int;
  }

  let create ~slots ~overflow =
    {
      slots = Array.make slots None;
      overflow = Array.make overflow None;
      next = 0;
      hits = 0;
      misses = 0;
      collisions = 0;
    }

  let slot_of t ~space ~vpn =
    abs ((space * 0x9E3779B1) lxor (vpn * 0x85EBCA77)) mod Array.length t.slots

  let matches e ~space ~vpn = e.m_space = space && e.m_vpn = vpn

  let overflow_insert t e =
    let n = Array.length t.overflow in
    if n > 0 then begin
      let empty = ref (-1) in
      for i = n - 1 downto 0 do
        if t.overflow.(i) = None then empty := i
      done;
      let i = if !empty >= 0 then !empty else t.next in
      if !empty < 0 then t.next <- (t.next + 1) mod n;
      t.overflow.(i) <- Some e
    end

  let overflow_drop t ~space ~vpn =
    Array.iteri
      (fun j o ->
        match o with Some e when matches e ~space ~vpn -> t.overflow.(j) <- None | _ -> ())
      t.overflow

  let insert t ~space ~vpn ~frame =
    let i = slot_of t ~space ~vpn in
    (match t.slots.(i) with
    | Some old when not (matches old ~space ~vpn) ->
        t.collisions <- t.collisions + 1;
        overflow_insert t old
    | Some _ | None -> ());
    overflow_drop t ~space ~vpn;
    t.slots.(i) <- Some { m_space = space; m_vpn = vpn; m_frame = frame }

  let remove t ~space ~vpn =
    let i = slot_of t ~space ~vpn in
    (match t.slots.(i) with
    | Some e when matches e ~space ~vpn -> t.slots.(i) <- None
    | Some _ | None -> ());
    overflow_drop t ~space ~vpn

  let remove_space t ~space =
    let drop arr =
      Array.iteri
        (fun i o -> match o with Some e when e.m_space = space -> arr.(i) <- None | _ -> ())
        arr
    in
    drop t.slots;
    drop t.overflow

  let lookup t ~space ~vpn =
    let i = slot_of t ~space ~vpn in
    let found =
      match t.slots.(i) with
      | Some e when matches e ~space ~vpn -> Some e.m_frame
      | _ ->
          Array.fold_left
            (fun acc o ->
              match (acc, o) with
              | None, Some e when matches e ~space ~vpn -> Some e.m_frame
              | _ -> acc)
            None t.overflow
    in
    (match found with None -> t.misses <- t.misses + 1 | Some _ -> t.hits <- t.hits + 1);
    found

  let resident t =
    let count = Array.fold_left (fun acc o -> if o = None then acc else acc + 1) 0 in
    count t.slots + count t.overflow
end

type pt_op =
  | P_insert of int * int * int
  | P_remove of int * int
  | P_remove_space of int
  | P_lookup of int * int

let pt_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun s v f -> P_insert (s, v, f)) (int_bound 2) (int_bound 11) (int_bound 99));
        (3, map (fun (s, v) -> P_lookup (s, v)) (pair (int_bound 2) (int_bound 11)));
        (2, map (fun (s, v) -> P_remove (s, v)) (pair (int_bound 2) (int_bound 11)));
        (1, map (fun s -> P_remove_space s) (int_bound 2));
      ])

let prop_pt_stats_match_model =
  QCheck.Test.make ~name:"mapping hash: churn matches the reference model (contents and stats)"
    ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 120) pt_op_gen))
    (fun ops ->
      let pt = Pt.create ~slots:4 ~overflow:2 () in
      let m = Pt_model.create ~slots:4 ~overflow:2 in
      List.iter
        (fun op ->
          match op with
          | P_insert (space, vpn, frame) ->
              Pt.insert pt ~space ~vpn ~frame ~prot:prot_rw;
              Pt_model.insert m ~space ~vpn ~frame
          | P_remove (space, vpn) ->
              Pt.remove pt ~space ~vpn;
              Pt_model.remove m ~space ~vpn
          | P_remove_space space ->
              Pt.remove_space pt ~space;
              Pt_model.remove_space m ~space
          | P_lookup (space, vpn) ->
              ignore (Pt.lookup pt ~space ~vpn);
              ignore (Pt_model.lookup m ~space ~vpn))
        ops;
      (* Final sweep of the whole key universe: identical contents (the
         sweep itself advances both stat sets in lockstep). *)
      let contents_ok = ref true in
      for space = 0 to 2 do
        for vpn = 0 to 11 do
          let got = Option.map fst (Pt.lookup pt ~space ~vpn) in
          if got <> Pt_model.lookup m ~space ~vpn then contents_ok := false
        done
      done;
      !contents_ok
      && Pt.hits pt = m.Pt_model.hits
      && Pt.misses pt = m.Pt_model.misses
      && Pt.collisions pt = m.Pt_model.collisions
      && Pt.resident pt = Pt_model.resident m)

let prop_cache_sequential_second_pass_hits =
  QCheck.Test.make ~name:"cache: a working set within capacity hits on the second sweep"
    ~count:50
    QCheck.(int_range 1 8)
    (fun pages ->
      let c = Cache.create ~size_bytes:(64 * 1024) () in
      (* Distinct colors: no conflicts. *)
      for p = 0 to pages - 1 do
        Cache.touch_page c ~phys_addr:(p * 4096) ~page_bytes:4096
      done;
      Cache.reset_stats c;
      for p = 0 to pages - 1 do
        Cache.touch_page c ~phys_addr:(p * 4096) ~page_bytes:4096
      done;
      Cache.misses c = 0)

(* Differential model of the physically-indexed cache: a pure reference
   (map of set -> resident line) replayed against access/touch_page/
   color_of on random address sequences over several geometries. Hit/miss
   verdicts must agree access-by-access and the accesses/hits/misses/
   miss_rate counters must match exactly at the end. *)
module Cache_model = struct
  type t = {
    line_bytes : int;
    sets : int;
    resident : (int, int) Hashtbl.t;  (* set -> resident line *)
    mutable accesses : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create ~line_bytes ~size_bytes =
    {
      line_bytes;
      sets = size_bytes / line_bytes;
      resident = Hashtbl.create 64;
      accesses = 0;
      hits = 0;
      misses = 0;
    }

  let access t addr =
    let line = addr / t.line_bytes in
    let set = line mod t.sets in
    t.accesses <- t.accesses + 1;
    if Hashtbl.find_opt t.resident set = Some line then begin
      t.hits <- t.hits + 1;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      Hashtbl.replace t.resident set line;
      false
    end

  let touch_page t addr ~page_bytes =
    for i = 0 to (page_bytes / t.line_bytes) - 1 do
      ignore (access t (addr + (i * t.line_bytes)))
    done

  let miss_rate t =
    if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

  let color_of t addr ~page_bytes =
    addr / page_bytes mod max 1 (t.sets * t.line_bytes / page_bytes)
end

type cache_op = C_access of int | C_touch_page of int

let cache_op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun a -> C_access a) (int_bound 0x7FFFF));
        (1, map (fun a -> C_touch_page a) (int_bound 0x7FFFF));
      ])

let cache_geometries = [ (16 * 1024, 64); (64 * 1024, 64); (8 * 1024, 32); (4 * 1024, 128) ]

let prop_cache_matches_model =
  QCheck.Test.make ~name:"cache: churn matches the reference model (verdicts and stats)"
    ~count:300
    (QCheck.make
       QCheck.Gen.(pair (oneofl cache_geometries) (list_size (int_range 0 120) cache_op_gen)))
    (fun ((size_bytes, line_bytes), ops) ->
      let c = Cache.create ~line_bytes ~size_bytes () in
      let m = Cache_model.create ~line_bytes ~size_bytes in
      let verdicts_ok = ref true in
      List.iter
        (fun op ->
          match op with
          | C_access addr ->
              if Cache.access c ~phys_addr:addr <> Cache_model.access m addr then
                verdicts_ok := false
          | C_touch_page addr ->
              Cache.touch_page c ~phys_addr:addr ~page_bytes:4096;
              Cache_model.touch_page m addr ~page_bytes:4096)
        ops;
      let colors_ok = ref true in
      List.iter
        (fun page_bytes ->
          for p = 0 to 40 do
            let addr = p * page_bytes in
            if
              Cache.color_of c ~phys_addr:addr ~page_bytes
              <> Cache_model.color_of m addr ~page_bytes
            then colors_ok := false
          done)
        [ 4096; 8192 ];
      !verdicts_ok && !colors_ok
      && Cache.accesses c = m.Cache_model.accesses
      && Cache.hits c = m.Cache_model.hits
      && Cache.misses c = m.Cache_model.misses
      && Cache.miss_rate c = Cache_model.miss_rate m)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pt_lookup_after_insert;
      prop_pt_overflow_oldest_discarded;
      prop_pt_stats_match_model;
      prop_cache_sequential_second_pass_hits;
      prop_cache_matches_model;
    ]

let () =
  Alcotest.run "hw"
    [
      ( "page-data",
        [
          Alcotest.test_case "equality" `Quick test_data_equal;
          Alcotest.test_case "byte observation" `Quick test_data_byte_observation;
        ] );
      ( "phys-mem",
        [
          Alcotest.test_case "layout" `Quick test_phys_layout;
          Alcotest.test_case "color/range queries" `Quick test_phys_queries;
          Alcotest.test_case "indexes match the naive scan" `Quick test_phys_indexes_match_scan;
          Alcotest.test_case "copy and zero" `Quick test_phys_copy_zero;
          Alcotest.test_case "bad create" `Quick test_phys_bad_create;
          Alcotest.test_case "tiered layout" `Quick test_phys_tiered_layout;
          Alcotest.test_case "tier-scoped queries" `Quick test_phys_tier_scoped_queries;
          Alcotest.test_case "owner tag" `Quick test_phys_owner_tag;
          Alcotest.test_case "find aligned run" `Quick test_phys_find_aligned_run;
        ] );
      ( "page-table",
        [
          Alcotest.test_case "insert/lookup" `Quick test_pt_insert_lookup;
          Alcotest.test_case "remove" `Quick test_pt_remove;
          Alcotest.test_case "remove space" `Quick test_pt_remove_space;
          Alcotest.test_case "collision to overflow" `Quick test_pt_collision_overflow;
          Alcotest.test_case "overflow eviction" `Quick test_pt_overflow_eviction;
          Alcotest.test_case "update in place" `Quick test_pt_update_in_place;
          Alcotest.test_case "overflow churn vs model" `Quick test_pt_overflow_churn_matches_model;
          Alcotest.test_case "sized to machine memory" `Quick test_machine_pt_sized_to_memory;
          Alcotest.test_case "super basics" `Quick test_pt_super_basics;
          Alcotest.test_case "super collision + teardown" `Quick
            test_pt_super_collision_and_space;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "basics" `Quick test_tlb_basics;
          Alcotest.test_case "space invalidation" `Quick test_tlb_space_invalidation;
          Alcotest.test_case "hit rate" `Quick test_tlb_hit_rate;
          Alcotest.test_case "superpage entries" `Quick test_tlb_super;
        ] );
      ( "disk",
        [
          Alcotest.test_case "service time" `Quick test_disk_service_time;
          Alcotest.test_case "serialises" `Quick test_disk_serialises;
          Alcotest.test_case "1992 latency" `Quick test_disk_1992_latency;
        ] );
      ( "cache",
        [
          Alcotest.test_case "conflicts" `Quick test_cache_conflicts;
          Alcotest.test_case "colors" `Quick test_cache_colors;
          Alcotest.test_case "n_colors identity" `Quick test_cache_n_colors_identity;
        ] );
      ("properties", qcheck_cases);
    ]
