(** Configuration for the §3.3 database transaction-processing
    simulation. *)

type indexing =
  | No_index  (** Joins scan relations. *)
  | Index_in_memory  (** Enough physical memory for every index. *)
  | Index_with_paging
      (** The program's virtual memory exceeds its allocation by 1 MB: one
          index is always out; when needed it is paged in from disk under
          the index latch (≈every 500 transactions). *)
  | Index_regeneration
      (** The DBMS is told its allocation shrank by 1 MB and discards one
          index, regenerating it in memory when needed. *)

type t = {
  label : string;
  indexing : indexing;
  seed : int64;
  duration_s : float;  (** Simulated run length. *)
  warmup_s : float;  (** Transactions before this are not counted. *)
  tps : float;  (** Poisson arrival rate — 40 in the paper. *)
  join_fraction : float;  (** 0.05 in the paper. *)
  n_cpus : int;  (** 6 of the SGI 4D/380's 8. *)
  (* service demands, milliseconds of one 30-MIPS processor *)
  dc_service_ms : float;
  join_index_ms : float;  (** Join using an in-memory index. *)
  join_scan_ms : float;  (** Join by relation scan (no index). *)
  regen_ms : float;  (** Rebuild one 1 MB index from its relation. *)
  (* data layout *)
  n_indices : int;
  index_pages : int;  (** 256 pages = 1 MB. *)
  accounts_pages : int;
  summary_pages : int;
  dc_touch_pages : int;  (** Data pages a DebitCredit touches. *)
  p_evicted_index_needed : float;
      (** Probability a transaction needs the currently-evicted (coldest)
          index — 1/500 reproduces the paper's "paged in every 500
          transactions". *)
}

val base : t
(** The paper's parameters with service demands calibrated for the SGI
    4D/380 (see EXPERIMENTS.md). [indexing] defaults to
    [Index_in_memory]. *)

val no_index : t
val index_in_memory : t
val index_with_paging : t
val index_regeneration : t
val all_paper_configs : t list
(** The four Table 4 rows, in paper order. *)

val indexing_label : indexing -> string
