lib/managers/mgr_checkpoint.mli: Epcm_kernel Epcm_manager Epcm_segment Hw_page_data Mgr_generic
